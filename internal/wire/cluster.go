package wire

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poiagg/internal/cluster"
	"poiagg/internal/obs"
	"poiagg/internal/poi"
)

// Cluster metric names exported on the gateway's registry. Per-shard
// gauges are suffixed with the shard's index in the configured peer
// list ("cluster.shard.0.inflight", ...); the gateway logs the
// index → URL mapping at startup.
const (
	// MetricClusterPeers is the configured fleet size.
	MetricClusterPeers = "cluster.peers"
	// MetricClusterHealthy / Unhealthy split the fleet by probe state.
	MetricClusterHealthy   = "cluster.healthy"
	MetricClusterUnhealthy = "cluster.unhealthy"
	// MetricClusterEvictions counts shards removed from the ring.
	MetricClusterEvictions = "cluster.evictions"
	// MetricClusterRestores counts shards re-added after recovery.
	MetricClusterRestores = "cluster.restores"
	// MetricClusterProbesOK / Fail count individual health probes.
	MetricClusterProbesOK   = "cluster.probes.ok"
	MetricClusterProbesFail = "cluster.probes.fail"
	// MetricClusterFanout is the latency histogram of batch fan-outs
	// (split → concurrent shard calls → merge).
	MetricClusterFanout = "cluster.fanout"
)

// DefaultProbeInterval is the health-probe cadence unless
// WithProbeInterval overrides it.
const DefaultProbeInterval = 2 * time.Second

// DefaultProbeTimeout bounds one /readyz probe.
const DefaultProbeTimeout = time.Second

// clusterPeer is one gspd shard behind the gateway.
type clusterPeer struct {
	url    string
	index  int
	client *GSPClient
	hc     *http.Client

	// healthy gates ring membership: the transition edges (CAS) are
	// what add and remove the peer, so concurrent probes and fan-out
	// evictions cannot double-mutate the ring.
	healthy  atomic.Bool
	inflight atomic.Int64
	errs     atomic.Uint64
}

// ClusterGateway routes the GSP endpoint surface across a fleet of gspd
// shards: single queries go to the consistent-hash owner of the
// query's (city × grid cell), batch requests are split per shard,
// fanned out concurrently through the hardened wire client, and merged
// preserving input order with per-item errors. A fleet behind the
// gateway is bit-identical to one gspd over the same city — proven by
// the differential cluster e2e — because every shard holds the full
// city and the gateway reuses the server's own validators and response
// types. Sharding buys capacity: each shard's freq cache holds only its
// ~1/N slice of the cell keyspace.
//
// Shard death is handled twice over: a refused connection evicts the
// peer from the ring mid-request (single queries fail over to the new
// owner; batch items report structured per-item errors), and the
// /readyz-driven health prober (StartProber/ProbeOnce) removes dead
// peers and re-adds recovered ones.
//
// ClusterGateway is an http.Handler; callers own the http.Server.
type ClusterGateway struct {
	mux *http.ServeMux
	log *log.Logger

	maxRadius float64
	maxBatch  int
	maxBody   int64

	cellSize  float64
	cityLabel string
	vnodes    int

	probeInterval time.Duration
	probeTimeout  time.Duration

	peerTransport http.RoundTripper
	peerOpts      []ClientOption

	ring     *cluster.Ring
	peers    []*clusterPeer
	byURL    map[string]*clusterPeer
	reg      *obs.Registry
	fanout   obs.Histogram
	pprof    bool
	handler  http.Handler
	draining atomic.Bool

	admitCfg AdmissionConfig
	admit    *admission

	authKeys *Keyring
	authOpts []AuthOption
	auth     *authenticator
}

var _ http.Handler = (*ClusterGateway)(nil)

// ClusterOption customizes a ClusterGateway. The shared ServerOption
// values (WithAdmission, WithMaxBody, WithAuth) satisfy this interface
// too, so the gateway mirrors gspd's admission and auth configuration
// with the same option values.
type ClusterOption interface {
	applyCluster(*ClusterGateway)
}

type clusterOption func(*ClusterGateway)

func (o clusterOption) applyCluster(g *ClusterGateway) { o(g) }

// WithClusterLogger sets the gateway's logger (default log.Default()).
func WithClusterLogger(l *log.Logger) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.log = l })
}

// WithClusterMetrics shares an externally owned metrics registry.
func WithClusterMetrics(reg *obs.Registry) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if reg != nil {
			g.reg = reg
		}
	})
}

// WithClusterMaxRadius caps the accepted query radius in meters; it
// must match the shards' -max-radius so gateway-side validation rejects
// exactly what the shards would.
func WithClusterMaxRadius(r float64) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.maxRadius = r })
}

// WithClusterMaxBatch caps items per batch request, mirroring the
// shards' WithMaxBatch.
func WithClusterMaxBatch(n int) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if n > 0 {
			g.maxBatch = n
		}
	})
}

// WithVirtualNodes sets the consistent-hash ring's virtual nodes per
// shard (default cluster.DefaultVirtualNodes).
func WithVirtualNodes(n int) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if n > 0 {
			g.vnodes = n
		}
	})
}

// WithCellSize sets the routing grid's cell edge in meters (default
// cluster.DefaultCellSize). All gateways over one fleet must agree.
func WithCellSize(m float64) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if m > 0 {
			g.cellSize = m
		}
	})
}

// WithCityLabel sets the city component of the routing keyspace,
// isolating co-hosted cities on one fleet. Single-city deployments may
// leave it empty (the default).
func WithCityLabel(label string) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.cityLabel = label })
}

// WithProbeInterval sets the health-probe cadence for StartProber
// (default DefaultProbeInterval).
func WithProbeInterval(d time.Duration) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if d > 0 {
			g.probeInterval = d
		}
	})
}

// WithProbeTimeout bounds one /readyz probe (default
// DefaultProbeTimeout).
func WithProbeTimeout(d time.Duration) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if d > 0 {
			g.probeTimeout = d
		}
	})
}

// WithPeerTransport sets the http.RoundTripper under every per-shard
// client and health probe (default http.DefaultTransport). The cluster
// e2e injects shard death here.
func WithPeerTransport(rt http.RoundTripper) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if rt != nil {
			g.peerTransport = rt
		}
	})
}

// WithPeerClientOptions appends options to every per-shard wire client
// — WithSigningKey to sign gateway→shard traffic against authenticated
// shards, WithRetries/WithBackoff to tune the fan-out retry policy.
// They are applied after the gateway's defaults (2 retries, the probe
// timeout as per-attempt bound), so they win.
func WithPeerClientOptions(opts ...ClientOption) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		g.peerOpts = append(g.peerOpts, opts...)
	})
}

// WithClusterPprof serves net/http/pprof under /debug/pprof/ (default
// off), mirroring gspd's -pprof.
func WithClusterPprof(on bool) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.pprof = on })
}

// NewClusterGateway builds a gateway over a static shard list (base
// URLs). Every peer starts on the ring; the prober corrects membership
// from /readyz. The peer list must be non-empty and duplicate-free.
func NewClusterGateway(peers []string, opts ...ClusterOption) (*ClusterGateway, error) {
	g := &ClusterGateway{
		mux:           http.NewServeMux(),
		log:           log.Default(),
		maxRadius:     10_000,
		maxBatch:      DefaultMaxBatch,
		maxBody:       DefaultMaxBody,
		cellSize:      cluster.DefaultCellSize,
		vnodes:        cluster.DefaultVirtualNodes,
		probeInterval: DefaultProbeInterval,
		probeTimeout:  DefaultProbeTimeout,
		peerTransport: http.DefaultTransport,
		reg:           obs.NewRegistry(),
		byURL:         make(map[string]*clusterPeer),
	}
	for _, opt := range opts {
		opt.applyCluster(g)
	}
	if len(peers) == 0 {
		return nil, errors.New("wire: cluster gateway needs at least one shard")
	}
	g.ring = cluster.New(g.vnodes)
	for i, raw := range peers {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("wire: cluster gateway: empty peer at position %d", i)
		}
		if _, dup := g.byURL[u]; dup {
			return nil, fmt.Errorf("wire: cluster gateway: duplicate peer %s", u)
		}
		hc := &http.Client{Transport: g.peerTransport}
		clientOpts := append([]ClientOption{
			WithRetries(2),
			WithRequestTimeout(g.probeTimeout * 4),
			WithClientMetrics(g.reg),
		}, g.peerOpts...)
		p := &clusterPeer{
			url:    u,
			index:  i,
			client: NewGSPClient(u, hc, clientOpts...),
			hc:     hc,
		}
		p.healthy.Store(true)
		g.ring.Add(u)
		g.peers = append(g.peers, p)
		g.byURL[u] = p
	}
	g.exportMetrics()

	g.mux.HandleFunc("GET "+PathStats, g.handleStats)
	g.mux.HandleFunc("GET "+PathPOIs, g.handlePOIs)
	g.mux.HandleFunc("GET "+PathQuery, g.handleQuery)
	g.mux.HandleFunc("GET "+PathFreq, g.handleFreq)
	g.mux.HandleFunc("POST "+PathFreqBatch, g.handleFreqBatch)
	g.mux.HandleFunc("POST "+PathQueryBatch, g.handleQueryBatch)
	if g.pprof {
		registerPprof(g.mux)
	}

	// Middleware order mirrors GSPServer exactly: admission inside auth
	// inside instrumentation, so a forged request costs one HMAC and a
	// shed is counted per route.
	var inner http.Handler = g.mux
	if g.admitCfg.Limit > 0 {
		g.admit = newAdmission(g.admitCfg)
		g.admit.export(g.reg)
		inner = g.admit.middleware(inner, map[string]bool{
			PathFreqBatch:  true,
			PathQueryBatch: true,
		})
	}
	if g.auth = newServerAuth(g.authKeys, g.authOpts); g.auth != nil {
		g.auth.export(g.reg)
		inner = g.auth.middleware(inner, g.maxBody)
	}
	g.handler = obs.Instrument(g.reg, inner,
		obs.WithRequestHook(g.logRequest),
		obs.WithReadyCheck(g.readyCheck))

	for _, p := range g.peers {
		g.log.Printf("cluster: shard %d = %s", p.index, p.url)
	}
	return g, nil
}

// exportMetrics publishes the cluster gauges and counters.
func (g *ClusterGateway) exportMetrics() {
	g.reg.CounterFunc(MetricClusterPeers, func() uint64 { return uint64(len(g.peers)) })
	g.reg.CounterFunc(MetricClusterHealthy, func() uint64 { return uint64(g.healthyCount()) })
	g.reg.CounterFunc(MetricClusterUnhealthy, func() uint64 {
		return uint64(len(g.peers) - g.healthyCount())
	})
	g.reg.RegisterLatency(MetricClusterFanout, &g.fanout)
	// Pre-create the event counters so they appear in snapshots at zero.
	g.reg.Counter(MetricClusterEvictions)
	g.reg.Counter(MetricClusterRestores)
	g.reg.Counter(MetricClusterProbesOK)
	g.reg.Counter(MetricClusterProbesFail)
	for _, p := range g.peers {
		p := p
		prefix := "cluster.shard." + strconv.Itoa(p.index)
		g.reg.CounterFunc(prefix+".inflight", func() uint64 { return uint64(p.inflight.Load()) })
		g.reg.CounterFunc(prefix+".errors", p.errs.Load)
		g.reg.CounterFunc(prefix+".healthy", func() uint64 {
			if p.healthy.Load() {
				return 1
			}
			return 0
		})
	}
}

// Metrics returns the gateway's metrics registry.
func (g *ClusterGateway) Metrics() *obs.Registry { return g.reg }

// Drain flips /readyz to 503 ahead of shutdown, like GSPServer.Drain.
func (g *ClusterGateway) Drain() { g.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (g *ClusterGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.handler.ServeHTTP(w, r)
}

func (g *ClusterGateway) logRequest(method, path string, status int, d time.Duration) {
	g.log.Printf("%s %s %d %s", method, path, status, d.Round(time.Microsecond))
}

// errNoHealthyShards is reported when the ring is empty — every shard
// evicted and none recovered yet.
var errNoHealthyShards = errors.New("wire: no healthy shards")

func (g *ClusterGateway) readyCheck() error {
	if g.draining.Load() {
		return errDraining
	}
	if g.healthyCount() == 0 {
		return errNoHealthyShards
	}
	return nil
}

func (g *ClusterGateway) healthyCount() int {
	n := 0
	for _, p := range g.peers {
		if p.healthy.Load() {
			n++
		}
	}
	return n
}

// evict removes a peer from the ring. The CAS makes concurrent
// evictions (a probe and a fan-out hitting the same dead shard) mutate
// the ring exactly once.
func (g *ClusterGateway) evict(p *clusterPeer, reason string) {
	if p.healthy.CompareAndSwap(true, false) {
		g.ring.Remove(p.url)
		g.reg.Counter(MetricClusterEvictions).Inc()
		g.log.Printf("cluster: evicted shard %d (%s): %s", p.index, p.url, reason)
	}
}

// restore re-adds a recovered peer; its vnode positions depend only on
// its URL, so it reclaims exactly the cells it owned before eviction.
func (g *ClusterGateway) restore(p *clusterPeer) {
	if p.healthy.CompareAndSwap(false, true) {
		g.ring.Add(p.url)
		g.reg.Counter(MetricClusterRestores).Inc()
		g.log.Printf("cluster: restored shard %d (%s)", p.index, p.url)
	}
}

// StartProber launches the periodic health-probe loop; it stops when
// ctx is canceled. Tests drive ProbeOnce directly instead.
func (g *ClusterGateway) StartProber(ctx context.Context) {
	go func() {
		t := time.NewTicker(g.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.ProbeOnce(ctx)
			}
		}
	}()
}

// ProbeOnce probes every configured shard's /readyz concurrently and
// converges the ring: ready shards are (re-)added, unready ones
// evicted. One pass is a full state reconciliation, so a test (or an
// operator signal handler) can call it for deterministic convergence.
func (g *ClusterGateway) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range g.peers {
		wg.Add(1)
		go func(p *clusterPeer) {
			defer wg.Done()
			if g.probePeer(ctx, p) {
				g.reg.Counter(MetricClusterProbesOK).Inc()
				g.restore(p)
			} else {
				g.reg.Counter(MetricClusterProbesFail).Inc()
				g.evict(p, "readyz probe failed")
			}
		}(p)
	}
	wg.Wait()
}

// probePeer reports whether one shard answers /readyz with 200.
func (g *ClusterGateway) probePeer(ctx context.Context, p *clusterPeer) bool {
	ctx, cancel := context.WithTimeout(ctx, g.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+obs.PathReadyz, nil)
	if err != nil {
		return false
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return false
	}
	drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// keyFor maps a query location to its ring key.
func (g *ClusterGateway) keyFor(x, y float64) uint64 {
	cx, cy := cluster.CellOf(x, y, g.cellSize)
	return cluster.Key(g.cityLabel, cx, cy)
}

// ownerPeer resolves the live peer owning key.
func (g *ClusterGateway) ownerPeer(key uint64) (*clusterPeer, bool) {
	u, ok := g.ring.Owner(key)
	if !ok {
		return nil, false
	}
	p, ok := g.byURL[u]
	return p, ok
}

// withShard runs fn against the owner of key, failing over: a refused
// connection evicts the owner from the ring and re-resolves, so a
// single query survives shard death in the same request. Other errors
// surface unchanged. The loop is bounded by the fleet size — each
// failover removes a peer.
func (g *ClusterGateway) withShard(key uint64, fn func(p *clusterPeer) error) error {
	for attempt := 0; attempt <= len(g.peers); attempt++ {
		p, ok := g.ownerPeer(key)
		if !ok {
			return errNoHealthyShards
		}
		p.inflight.Add(1)
		err := fn(p)
		p.inflight.Add(-1)
		if err == nil {
			return nil
		}
		p.errs.Add(1)
		if errors.Is(err, ErrPeerUnreachable) {
			g.evict(p, "connection refused")
			continue
		}
		return err
	}
	return errNoHealthyShards
}

// writeUpstreamError maps a shard-side failure onto the gateway's own
// response. Validation never reaches a shard (the gateway mirrors the
// server's validators), so what lands here is availability: overload
// propagates as 503 with the shard's Retry-After, everything else is a
// 502 naming the gateway as the failing hop.
func (g *ClusterGateway) writeUpstreamError(w http.ResponseWriter, err error) {
	var over *OverloadedError
	switch {
	case errors.Is(err, errNoHealthyShards):
		w.Header().Set("Retry-After", strconv.Itoa(max(1, int(g.probeInterval.Seconds()))))
		writeError(w, http.StatusServiceUnavailable, "no healthy shards")
	case errors.As(err, &over):
		if secs := int(over.RetryAfter.Seconds()); secs > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, http.StatusServiceUnavailable, "shard overloaded: "+over.Message)
	default:
		writeError(w, http.StatusBadGateway, "upstream shard error: "+err.Error())
	}
}

func (g *ClusterGateway) handleStats(w http.ResponseWriter, r *http.Request) {
	// Every shard serves the same city, so stats (like the POI dump)
	// routes through the ring at a fixed key — deterministic, and it
	// inherits the same failover as the query endpoints.
	var out *StatsResponse
	err := g.withShard(0, func(p *clusterPeer) error {
		var err error
		out, err = p.client.Stats(r.Context())
		return err
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, *out)
}

func (g *ClusterGateway) handlePOIs(w http.ResponseWriter, r *http.Request) {
	var out []poi.POI
	err := g.withShard(0, func(p *clusterPeer) error {
		pois, err := p.client.POIs(r.Context())
		if err != nil {
			return err
		}
		out = pois
		return nil
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, POIsResponse{POIs: out})
}

func (g *ClusterGateway) handleFreq(w http.ResponseWriter, r *http.Request) {
	l, radius, ok := parseLocationQuery(w, r, g.maxRadius)
	if !ok {
		return
	}
	var out FreqResponse
	err := g.withShard(g.keyFor(l.X, l.Y), func(p *clusterPeer) error {
		f, err := p.client.Freq(r.Context(), l, radius)
		if err != nil {
			return err
		}
		out.Freq = f
		return nil
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *ClusterGateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	l, radius, ok := parseLocationQuery(w, r, g.maxRadius)
	if !ok {
		return
	}
	var out QueryResponse
	err := g.withShard(g.keyFor(l.X, l.Y), func(p *clusterPeer) error {
		pois, err := p.client.Query(r.Context(), l, radius)
		if err != nil {
			return err
		}
		out.POIs = pois
		return nil
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// admitBatch mirrors GSPServer.admitBatch: item-count weight against
// the gateway's own admission gate.
func (g *ClusterGateway) admitBatch(w http.ResponseWriter, r *http.Request, n int) (func(), bool) {
	if g.admit == nil {
		return func() {}, true
	}
	return g.admit.admitHTTP(w, r, int64(n))
}

// shardBatch is one shard's slice of a batch fan-out: the items it
// owns plus their positions in the caller's order.
type shardBatch struct {
	p     *clusterPeer
	items []BatchItem
	idx   []int
}

// splitByOwner validates every item and groups the valid ones by the
// shard owning each item's cell, preserving first-seen shard order.
// Invalid or unroutable items get their error recorded through reject.
func (g *ClusterGateway) splitByOwner(items []BatchItem, reject func(i int, msg string)) []*shardBatch {
	var order []*shardBatch
	byPeer := make(map[*clusterPeer]*shardBatch)
	for i, it := range items {
		if err := validateBatchItem(it, g.maxRadius); err != nil {
			reject(i, err.Error())
			continue
		}
		p, ok := g.ownerPeer(g.keyFor(it.X, it.Y))
		if !ok {
			reject(i, "no healthy shards")
			continue
		}
		sb := byPeer[p]
		if sb == nil {
			sb = &shardBatch{p: p}
			byPeer[p] = sb
			order = append(order, sb)
		}
		sb.items = append(sb.items, it)
		sb.idx = append(sb.idx, i)
	}
	return order
}

// shardItemError is the structured per-item error for a whole-shard
// failure mid-batch.
func shardItemError(p *clusterPeer, err error) string {
	switch {
	case errors.Is(err, ErrPeerUnreachable):
		return fmt.Sprintf("shard %d unreachable", p.index)
	case errors.Is(err, ErrOverloaded):
		return fmt.Sprintf("shard %d overloaded", p.index)
	default:
		return fmt.Sprintf("shard %d failed: %v", p.index, err)
	}
}

// fanOut runs one shard call per group concurrently and records the
// fan-out latency. call must only write results at its own group's
// indices — disjoint by construction, so the merge is lock-free.
func (g *ClusterGateway) fanOut(groups []*shardBatch, call func(sb *shardBatch)) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, sb := range groups {
		wg.Add(1)
		go func(sb *shardBatch) {
			defer wg.Done()
			sb.p.inflight.Add(1)
			defer sb.p.inflight.Add(-1)
			call(sb)
		}(sb)
	}
	wg.Wait()
	g.fanout.Observe(time.Since(start))
}

// shardCallFailed books a failed shard call and reports the per-item
// message; a refused connection additionally evicts the shard so the
// next request routes around it.
func (g *ClusterGateway) shardCallFailed(sb *shardBatch, err error) string {
	sb.p.errs.Add(1)
	if errors.Is(err, ErrPeerUnreachable) {
		g.evict(sb.p, "connection refused during fanout")
	}
	return shardItemError(sb.p, err)
}

func (g *ClusterGateway) handleFreqBatch(w http.ResponseWriter, r *http.Request) {
	items, ok := decodeBatchRequest(w, r, g.maxBody, g.maxBatch)
	if !ok {
		return
	}
	release, ok := g.admitBatch(w, r, len(items))
	if !ok {
		return
	}
	defer release()
	results := make([]FreqBatchResult, len(items))
	groups := g.splitByOwner(items, func(i int, msg string) { results[i].Error = msg })
	g.fanOut(groups, func(sb *shardBatch) {
		res, err := sb.p.client.FreqBatch(r.Context(), sb.items)
		if err != nil {
			msg := g.shardCallFailed(sb, err)
			for _, i := range sb.idx {
				results[i].Error = msg
			}
			return
		}
		for j := range res {
			results[sb.idx[j]] = res[j]
		}
	})
	writeJSON(w, http.StatusOK, FreqBatchResponse{Results: results})
}

func (g *ClusterGateway) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	items, ok := decodeBatchRequest(w, r, g.maxBody, g.maxBatch)
	if !ok {
		return
	}
	release, ok := g.admitBatch(w, r, len(items))
	if !ok {
		return
	}
	defer release()
	results := make([]QueryBatchResult, len(items))
	groups := g.splitByOwner(items, func(i int, msg string) { results[i].Error = msg })
	g.fanOut(groups, func(sb *shardBatch) {
		res, err := sb.p.client.QueryBatch(r.Context(), sb.items)
		if err != nil {
			msg := g.shardCallFailed(sb, err)
			for _, i := range sb.idx {
				results[i].Error = msg
			}
			return
		}
		for j := range res {
			results[sb.idx[j]] = res[j]
		}
	})
	writeJSON(w, http.StatusOK, QueryBatchResponse{Results: results})
}
