package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poiagg/internal/cluster"
	"poiagg/internal/geo"
	"poiagg/internal/obs"
	"poiagg/internal/poi"
)

// Cluster metric names exported on the gateway's registry. Per-shard
// gauges are suffixed with the shard's index ("cluster.shard.0.inflight",
// ...); the gateway logs the index → URL mapping at startup and on
// every join. Indices are never reused — a rejoining peer gets a fresh
// one — so a departed index's gauges freeze at healthy=0 rather than
// silently renaming another shard's series.
const (
	// MetricClusterPeers is the current fleet size.
	MetricClusterPeers = "cluster.peers"
	// MetricClusterHealthy / Unhealthy split the fleet by probe state.
	MetricClusterHealthy   = "cluster.healthy"
	MetricClusterUnhealthy = "cluster.unhealthy"
	// MetricClusterEvictions counts shards removed from the ring.
	MetricClusterEvictions = "cluster.evictions"
	// MetricClusterRestores counts shards re-added after recovery.
	MetricClusterRestores = "cluster.restores"
	// MetricClusterProbesOK / Fail count individual health probes.
	MetricClusterProbesOK   = "cluster.probes.ok"
	MetricClusterProbesFail = "cluster.probes.fail"
	// MetricClusterFanout is the latency histogram of batch fan-outs
	// (split → concurrent shard calls → merge).
	MetricClusterFanout = "cluster.fanout"
	// MetricClusterReplicaHedges counts hedge launches: a second replica
	// asked because the first outlived the hedging delay.
	MetricClusterReplicaHedges = "cluster.replica.hedges"
	// MetricClusterReplicaFailovers counts replica launches triggered by
	// an earlier replica's error (as opposed to its slowness).
	MetricClusterReplicaFailovers = "cluster.replica.failovers"
	// MetricClusterReplicaSecondaryWins counts replicated GETs answered
	// by a non-primary replica.
	MetricClusterReplicaSecondaryWins = "cluster.replica.wins.secondary"
	// MetricClusterJoins / Leaves count admin membership changes.
	MetricClusterJoins  = "cluster.membership.joins"
	MetricClusterLeaves = "cluster.membership.leaves"
	// MetricClusterWarmCells counts cells replayed into joining shards;
	// MetricClusterWarmErrors counts aborted pre-warm passes.
	MetricClusterWarmCells  = "cluster.warm.cells"
	MetricClusterWarmErrors = "cluster.warm.errors"
)

// DefaultProbeInterval is the health-probe cadence unless
// WithProbeInterval overrides it.
const DefaultProbeInterval = 2 * time.Second

// DefaultProbeTimeout bounds one /readyz probe.
const DefaultProbeTimeout = time.Second

// DefaultHedgeDelay is how long a replicated GET waits on the primary
// replica before hedging to the next one. Well above a healthy
// in-datacenter RTT, so the common case stays one RPC.
const DefaultHedgeDelay = 50 * time.Millisecond

// DefaultWarmMaxCells caps the cells replayed into a joining shard by
// one pre-warm pass; cells beyond the cap are logged and skipped, and
// simply warm up from live traffic instead.
const DefaultWarmMaxCells = 4096

// clusterPeer is one gspd shard behind the gateway.
type clusterPeer struct {
	url    string
	index  int
	client *GSPClient
	hc     *http.Client

	// healthy gates ring membership: the transition edges (CAS) are
	// what add and remove the peer, so concurrent probes and fan-out
	// evictions cannot double-mutate the ring.
	healthy  atomic.Bool
	inflight atomic.Int64
	errs     atomic.Uint64

	// removed marks an admin-departed peer so an in-flight probe that
	// snapshotted the table before the removal cannot restore it onto
	// the ring afterwards.
	removed atomic.Bool
}

// peerTable is the mutable, lock-guarded membership shared by the
// prober, the fan-out paths, and the metrics exporters. Shard indices
// grow monotonically and are never reused.
type peerTable struct {
	mu    sync.RWMutex
	list  []*clusterPeer
	byURL map[string]*clusterPeer
	next  int
}

func newPeerTable() *peerTable {
	return &peerTable{byURL: make(map[string]*clusterPeer)}
}

// snapshot returns the current members; the slice is private to the
// caller but the peers are shared.
func (t *peerTable) snapshot() []*clusterPeer {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*clusterPeer, len(t.list))
	copy(out, t.list)
	return out
}

func (t *peerTable) get(url string) (*clusterPeer, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p, ok := t.byURL[url]
	return p, ok
}

func (t *peerTable) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.list)
}

// add assigns the next shard index and inserts the peer; it reports
// false (without assigning) on a duplicate URL.
func (t *peerTable) add(p *clusterPeer) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byURL[p.url]; dup {
		return false
	}
	p.index = t.next
	t.next++
	t.list = append(t.list, p)
	t.byURL[p.url] = p
	return true
}

// remove deletes the peer by URL, returning it for bookkeeping.
func (t *peerTable) remove(url string) (*clusterPeer, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.byURL[url]
	if !ok {
		return nil, false
	}
	delete(t.byURL, url)
	for i, q := range t.list {
		if q == p {
			t.list = append(t.list[:i], t.list[i+1:]...)
			break
		}
	}
	return p, true
}

// ClusterGateway routes the GSP endpoint surface across a fleet of gspd
// shards: single queries go to the consistent-hash owner of the
// query's (city × grid cell) — optionally raced against R replicas,
// first answer wins — batch requests are split per shard, fanned out
// concurrently through the hardened wire client, and merged preserving
// input order with per-item errors. A fleet behind the gateway is
// bit-identical to one gspd over the same city — proven by the
// differential cluster e2e — because every shard holds the full city
// and the gateway reuses the server's own validators and response
// types. Sharding buys capacity: each shard's freq cache holds only its
// ~1/N slice of the cell keyspace.
//
// Shard death is handled twice over: a refused connection evicts the
// peer from the ring mid-request (single queries fail over to the next
// replica or the new owner; batch items report structured per-item
// errors), and the /readyz-driven health prober (StartProber/ProbeOnce)
// removes dead peers and re-adds recovered ones.
//
// Membership is dynamic: POST /v1/cluster/peers joins a shard (after a
// readiness probe and a cache pre-warm of its incoming cells) and
// DELETE /v1/cluster/peers/{url} retires one, both without a restart.
//
// ClusterGateway is an http.Handler; callers own the http.Server.
type ClusterGateway struct {
	mux *http.ServeMux
	log *log.Logger

	maxRadius float64
	maxBatch  int
	maxBody   int64

	cellSize  float64
	cityLabel string
	vnodes    int

	probeInterval time.Duration
	probeTimeout  time.Duration

	replicas   int
	hedgeDelay time.Duration

	adminPrincipal string
	warmRadius     float64
	warmMaxCells   int

	peerTransport http.RoundTripper
	peerOpts      []ClientOption

	ring *cluster.Ring
	// table is the live membership; memberMu serializes admin joins and
	// leaves (probes and fan-outs only read).
	table    *peerTable
	memberMu sync.Mutex

	reg      *obs.Registry
	fanout   obs.Histogram
	pprof    bool
	handler  http.Handler
	draining atomic.Bool

	admitCfg AdmissionConfig
	admit    *admission

	authKeys *Keyring
	authOpts []AuthOption
	auth     *authenticator
}

var _ http.Handler = (*ClusterGateway)(nil)

// ClusterOption customizes a ClusterGateway. The shared ServerOption
// values (WithAdmission, WithMaxBody, WithAuth) satisfy this interface
// too, so the gateway mirrors gspd's admission and auth configuration
// with the same option values.
type ClusterOption interface {
	applyCluster(*ClusterGateway)
}

type clusterOption func(*ClusterGateway)

func (o clusterOption) applyCluster(g *ClusterGateway) { o(g) }

// WithClusterLogger sets the gateway's logger (default log.Default()).
func WithClusterLogger(l *log.Logger) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.log = l })
}

// WithClusterMetrics shares an externally owned metrics registry.
func WithClusterMetrics(reg *obs.Registry) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if reg != nil {
			g.reg = reg
		}
	})
}

// WithClusterMaxRadius caps the accepted query radius in meters; it
// must match the shards' -max-radius so gateway-side validation rejects
// exactly what the shards would.
func WithClusterMaxRadius(r float64) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.maxRadius = r })
}

// WithClusterMaxBatch caps items per batch request, mirroring the
// shards' WithMaxBatch.
func WithClusterMaxBatch(n int) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if n > 0 {
			g.maxBatch = n
		}
	})
}

// WithVirtualNodes sets the consistent-hash ring's virtual nodes per
// shard (default cluster.DefaultVirtualNodes).
func WithVirtualNodes(n int) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if n > 0 {
			g.vnodes = n
		}
	})
}

// WithCellSize sets the routing grid's cell edge in meters (default
// cluster.DefaultCellSize). All gateways over one fleet must agree.
func WithCellSize(m float64) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if m > 0 {
			g.cellSize = m
		}
	})
}

// WithCityLabel sets the city component of the routing keyspace,
// isolating co-hosted cities on one fleet. Single-city deployments may
// leave it empty (the default).
func WithCityLabel(label string) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.cityLabel = label })
}

// WithProbeInterval sets the health-probe cadence for StartProber
// (default DefaultProbeInterval).
func WithProbeInterval(d time.Duration) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if d > 0 {
			g.probeInterval = d
		}
	})
}

// WithProbeTimeout bounds one /readyz probe (default
// DefaultProbeTimeout).
func WithProbeTimeout(d time.Duration) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if d > 0 {
			g.probeTimeout = d
		}
	})
}

// WithReplicas makes every single-query GET race up to r distinct ring
// successors of the key, first answer wins (default 1 — primary only).
// Every shard holds the full city, so any replica's answer is the
// answer; replication buys tail latency and availability, not
// correctness. The hedging delay (WithHedgeDelay) keeps the common
// case at one RPC.
func WithReplicas(r int) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if r > 0 {
			g.replicas = r
		}
	})
}

// WithHedgeDelay sets how long a replicated GET waits on the current
// replica before launching the next one (default DefaultHedgeDelay).
// Errors fail over immediately regardless of the delay.
func WithHedgeDelay(d time.Duration) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if d > 0 {
			g.hedgeDelay = d
		}
	})
}

// WithClusterAdmin names the one principal allowed to mutate cluster
// membership when the gateway authenticates requests. Mirroring the
// budget admin surface's tenant rule: without auth the endpoints are
// open (the deployment has decided identity doesn't exist), with auth
// they are tenant-isolated — and if no admin principal is named, all
// mutations are refused (fail closed).
func WithClusterAdmin(principal string) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.adminPrincipal = principal })
}

// WithWarmRadius sets the query radius used when pre-warming a joining
// shard's cells (default: the routing cell size).
func WithWarmRadius(m float64) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if m > 0 {
			g.warmRadius = m
		}
	})
}

// WithWarmMaxCells caps the cells one join pre-warms (default
// DefaultWarmMaxCells); 0 disables pre-warming entirely.
func WithWarmMaxCells(n int) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if n >= 0 {
			g.warmMaxCells = n
		}
	})
}

// WithPeerTransport sets the http.RoundTripper under every per-shard
// client and health probe (default http.DefaultTransport). The cluster
// e2e injects shard death here.
func WithPeerTransport(rt http.RoundTripper) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		if rt != nil {
			g.peerTransport = rt
		}
	})
}

// WithPeerClientOptions appends options to every per-shard wire client
// — WithSigningKey to sign gateway→shard traffic against authenticated
// shards, WithRetries/WithBackoff to tune the fan-out retry policy.
// They are applied after the gateway's defaults (2 retries, the probe
// timeout as per-attempt bound), so they win.
func WithPeerClientOptions(opts ...ClientOption) ClusterOption {
	return clusterOption(func(g *ClusterGateway) {
		g.peerOpts = append(g.peerOpts, opts...)
	})
}

// WithClusterPprof serves net/http/pprof under /debug/pprof/ (default
// off), mirroring gspd's -pprof.
func WithClusterPprof(on bool) ClusterOption {
	return clusterOption(func(g *ClusterGateway) { g.pprof = on })
}

// NewClusterGateway builds a gateway over an initial shard list (base
// URLs). Every peer starts on the ring; the prober corrects membership
// from /readyz, and the /v1/cluster/peers admin surface grows and
// shrinks the fleet at runtime. The peer list must be non-empty and
// duplicate-free.
func NewClusterGateway(peers []string, opts ...ClusterOption) (*ClusterGateway, error) {
	g := &ClusterGateway{
		mux:           http.NewServeMux(),
		log:           log.Default(),
		maxRadius:     10_000,
		maxBatch:      DefaultMaxBatch,
		maxBody:       DefaultMaxBody,
		cellSize:      cluster.DefaultCellSize,
		vnodes:        cluster.DefaultVirtualNodes,
		probeInterval: DefaultProbeInterval,
		probeTimeout:  DefaultProbeTimeout,
		replicas:      1,
		hedgeDelay:    DefaultHedgeDelay,
		warmMaxCells:  DefaultWarmMaxCells,
		peerTransport: http.DefaultTransport,
		reg:           obs.NewRegistry(),
		table:         newPeerTable(),
	}
	for _, opt := range opts {
		opt.applyCluster(g)
	}
	if len(peers) == 0 {
		return nil, errors.New("wire: cluster gateway needs at least one shard")
	}
	g.ring = cluster.New(g.vnodes)
	for i, raw := range peers {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("wire: cluster gateway: empty peer at position %d", i)
		}
		p := g.newPeer(u)
		if !g.table.add(p) {
			return nil, fmt.Errorf("wire: cluster gateway: duplicate peer %s", u)
		}
		p.healthy.Store(true)
		g.ring.Add(u)
	}
	g.exportMetrics()

	g.mux.HandleFunc("GET "+PathStats, g.handleStats)
	g.mux.HandleFunc("GET "+PathPOIs, g.handlePOIs)
	g.mux.HandleFunc("GET "+PathQuery, g.handleQuery)
	g.mux.HandleFunc("GET "+PathFreq, g.handleFreq)
	g.mux.HandleFunc("POST "+PathFreqBatch, g.handleFreqBatch)
	g.mux.HandleFunc("POST "+PathQueryBatch, g.handleQueryBatch)
	g.mux.HandleFunc("GET "+PathClusterPeers, g.handlePeersList)
	g.mux.HandleFunc("POST "+PathClusterPeers, g.handlePeerJoin)
	g.mux.HandleFunc("DELETE "+PathClusterPeers+"/{url}", g.handlePeerLeave)
	if g.pprof {
		registerPprof(g.mux)
	}

	// Middleware order mirrors GSPServer exactly: admission inside auth
	// inside instrumentation, so a forged request costs one HMAC and a
	// shed is counted per route.
	var inner http.Handler = g.mux
	if g.admitCfg.Limit > 0 {
		g.admit = newAdmission(g.admitCfg)
		g.admit.export(g.reg)
		inner = g.admit.middleware(inner, map[string]bool{
			PathFreqBatch:  true,
			PathQueryBatch: true,
		})
	}
	if g.auth = newServerAuth(g.authKeys, g.authOpts); g.auth != nil {
		g.auth.export(g.reg)
		inner = g.auth.middleware(inner, g.maxBody)
	}
	g.handler = obs.Instrument(g.reg, inner,
		obs.WithRequestHook(g.logRequest),
		obs.WithReadyCheck(g.readyCheck))

	for _, p := range g.table.snapshot() {
		g.log.Printf("cluster: shard %d = %s", p.index, p.url)
	}
	return g, nil
}

// newPeer builds the shard handle (client + probe transport) for a
// normalized base URL; the caller owns table and ring insertion.
func (g *ClusterGateway) newPeer(u string) *clusterPeer {
	hc := &http.Client{Transport: g.peerTransport}
	clientOpts := append([]ClientOption{
		WithRetries(2),
		WithRequestTimeout(g.probeTimeout * 4),
		WithClientMetrics(g.reg),
	}, g.peerOpts...)
	return &clusterPeer{
		url:    u,
		client: NewGSPClient(u, hc, clientOpts...),
		hc:     hc,
	}
}

// exportMetrics publishes the cluster gauges and counters.
func (g *ClusterGateway) exportMetrics() {
	g.reg.CounterFunc(MetricClusterPeers, func() uint64 { return uint64(g.table.len()) })
	g.reg.CounterFunc(MetricClusterHealthy, func() uint64 { return uint64(g.healthyCount()) })
	g.reg.CounterFunc(MetricClusterUnhealthy, func() uint64 {
		return uint64(g.table.len() - g.healthyCount())
	})
	g.reg.RegisterLatency(MetricClusterFanout, &g.fanout)
	// Pre-create the event counters so they appear in snapshots at zero.
	g.reg.Counter(MetricClusterEvictions)
	g.reg.Counter(MetricClusterRestores)
	g.reg.Counter(MetricClusterProbesOK)
	g.reg.Counter(MetricClusterProbesFail)
	g.reg.Counter(MetricClusterReplicaHedges)
	g.reg.Counter(MetricClusterReplicaFailovers)
	g.reg.Counter(MetricClusterReplicaSecondaryWins)
	g.reg.Counter(MetricClusterJoins)
	g.reg.Counter(MetricClusterLeaves)
	g.reg.Counter(MetricClusterWarmCells)
	g.reg.Counter(MetricClusterWarmErrors)
	for _, p := range g.table.snapshot() {
		g.exportPeerMetrics(p)
	}
}

// exportPeerMetrics publishes one shard's per-index gauges; called at
// construction and again for every joining peer.
func (g *ClusterGateway) exportPeerMetrics(p *clusterPeer) {
	prefix := "cluster.shard." + strconv.Itoa(p.index)
	g.reg.CounterFunc(prefix+".inflight", func() uint64 { return uint64(p.inflight.Load()) })
	g.reg.CounterFunc(prefix+".errors", p.errs.Load)
	g.reg.CounterFunc(prefix+".healthy", func() uint64 {
		if p.healthy.Load() {
			return 1
		}
		return 0
	})
}

// Metrics returns the gateway's metrics registry.
func (g *ClusterGateway) Metrics() *obs.Registry { return g.reg }

// Drain flips /readyz to 503 ahead of shutdown, like GSPServer.Drain.
func (g *ClusterGateway) Drain() { g.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (g *ClusterGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.handler.ServeHTTP(w, r)
}

func (g *ClusterGateway) logRequest(method, path string, status int, d time.Duration) {
	g.log.Printf("%s %s %d %s", method, path, status, d.Round(time.Microsecond))
}

// errNoHealthyShards is reported when the ring is empty — every shard
// evicted and none recovered yet.
var errNoHealthyShards = errors.New("wire: no healthy shards")

func (g *ClusterGateway) readyCheck() error {
	if g.draining.Load() {
		return errDraining
	}
	if g.healthyCount() == 0 {
		return errNoHealthyShards
	}
	return nil
}

func (g *ClusterGateway) healthyCount() int {
	n := 0
	for _, p := range g.table.snapshot() {
		if p.healthy.Load() {
			n++
		}
	}
	return n
}

// evict removes a peer from the ring. The CAS makes concurrent
// evictions (a probe and a fan-out hitting the same dead shard) mutate
// the ring exactly once.
func (g *ClusterGateway) evict(p *clusterPeer, reason string) {
	if p.healthy.CompareAndSwap(true, false) {
		g.ring.Remove(p.url)
		g.reg.Counter(MetricClusterEvictions).Inc()
		g.log.Printf("cluster: evicted shard %d (%s): %s", p.index, p.url, reason)
	}
}

// restore re-adds a recovered peer; its vnode positions depend only on
// its URL, so it reclaims exactly the cells it owned before eviction.
// An admin-removed peer is never restored: the removed flag is checked
// on both sides of the CAS so a probe racing the removal cannot leak
// the peer back onto the ring.
func (g *ClusterGateway) restore(p *clusterPeer) {
	if p.removed.Load() {
		return
	}
	if p.healthy.CompareAndSwap(false, true) {
		if p.removed.Load() {
			p.healthy.Store(false)
			return
		}
		g.ring.Add(p.url)
		g.reg.Counter(MetricClusterRestores).Inc()
		g.log.Printf("cluster: restored shard %d (%s)", p.index, p.url)
	}
}

// StartProber runs one synchronous reconciliation pass — a shard that
// is dead at gateway boot must not serve a probeInterval's worth of
// failover traffic before the first tick — then launches the periodic
// probe loop, which stops when ctx is canceled. Tests drive ProbeOnce
// directly instead.
func (g *ClusterGateway) StartProber(ctx context.Context) {
	g.ProbeOnce(ctx)
	go func() {
		t := time.NewTicker(g.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.ProbeOnce(ctx)
			}
		}
	}()
}

// ProbeOnce probes every member shard's /readyz concurrently and
// converges the ring: ready shards are (re-)added, unready ones
// evicted. One pass is a full state reconciliation, so a test (or an
// operator signal handler) can call it for deterministic convergence.
func (g *ClusterGateway) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range g.table.snapshot() {
		if p.removed.Load() {
			continue
		}
		wg.Add(1)
		go func(p *clusterPeer) {
			defer wg.Done()
			if g.probePeer(ctx, p) {
				g.reg.Counter(MetricClusterProbesOK).Inc()
				g.restore(p)
			} else {
				g.reg.Counter(MetricClusterProbesFail).Inc()
				g.evict(p, "readyz probe failed")
			}
		}(p)
	}
	wg.Wait()
}

// probePeer reports whether one shard answers /readyz with 200.
func (g *ClusterGateway) probePeer(ctx context.Context, p *clusterPeer) bool {
	ctx, cancel := context.WithTimeout(ctx, g.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+obs.PathReadyz, nil)
	if err != nil {
		return false
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return false
	}
	drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// keyFor maps a query location to its ring key.
func (g *ClusterGateway) keyFor(x, y float64) uint64 {
	cx, cy := cluster.CellOf(x, y, g.cellSize)
	return cluster.Key(g.cityLabel, cx, cy)
}

// ownerPeer resolves the live peer owning key.
func (g *ClusterGateway) ownerPeer(key uint64) (*clusterPeer, bool) {
	u, ok := g.ring.Owner(key)
	if !ok {
		return nil, false
	}
	return g.table.get(u)
}

// replicaPeers resolves the key's replica set in rank order.
func (g *ClusterGateway) replicaPeers(key uint64) []*clusterPeer {
	urls := g.ring.Owners(key, max(1, g.replicas))
	out := make([]*clusterPeer, 0, len(urls))
	for _, u := range urls {
		if p, ok := g.table.get(u); ok {
			out = append(out, p)
		}
	}
	return out
}

// shardCall is one endpoint's call against one shard, returning the
// decoded response value. Each replica gets its own invocation, so
// implementations must not write shared state — the winner's return
// value is the only thing committed.
type shardCall func(ctx context.Context, p *clusterPeer) (any, error)

// callReplicated runs call against the key's replica set first-wins,
// failing over across rounds: when a whole replica set turns out
// unreachable (each member refused and was evicted), ownership has
// moved and the next round resolves the new set — so a single query
// survives shard death in the same request. The loop is bounded by the
// fleet size; each retried round has strictly fewer live peers.
func (g *ClusterGateway) callReplicated(ctx context.Context, key uint64, call shardCall) (any, error) {
	for attempt := 0; attempt <= g.table.len(); attempt++ {
		peers := g.replicaPeers(key)
		if len(peers) == 0 {
			if g.ring.Len() > 0 {
				// A membership change slipped between the ring resolve
				// and the table lookup; re-resolve against the new state.
				continue
			}
			return nil, errNoHealthyShards
		}
		v, err, retry := g.raceReplicas(ctx, peers, call)
		if err == nil {
			return v, nil
		}
		if retry {
			continue
		}
		return nil, err
	}
	return nil, errNoHealthyShards
}

// raceReplicas launches call against peers[0] and hedges down the rank
// order: the next replica starts when the previous one outlives the
// hedging delay (a hedge) or errors (a failover). The first success
// wins and cancels the rest. retry reports the everyone-unreachable
// case: every raced peer refused and was evicted, so the caller should
// re-resolve ownership and try again; any other error is returned in
// arrival order preferring non-transport errors.
func (g *ClusterGateway) raceReplicas(ctx context.Context, peers []*clusterPeer, call shardCall) (v any, err error, retry bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		p   *clusterPeer
		v   any
		err error
	}
	results := make(chan outcome, len(peers))
	launched := 0
	launch := func() {
		p := peers[launched]
		launched++
		p.inflight.Add(1)
		go func() {
			defer p.inflight.Add(-1)
			v, err := call(ctx, p)
			results <- outcome{p: p, v: v, err: err}
		}()
	}
	launch()

	var hedgeC <-chan time.Time
	var hedge *time.Timer
	if len(peers) > 1 && g.hedgeDelay > 0 {
		hedge = time.NewTimer(g.hedgeDelay)
		defer hedge.Stop()
		hedgeC = hedge.C
	}

	pending := 1
	var firstErr error
	for {
		select {
		case <-hedgeC:
			if launched < len(peers) {
				g.reg.Counter(MetricClusterReplicaHedges).Inc()
				launch()
				pending++
				hedge.Reset(g.hedgeDelay)
			} else {
				hedgeC = nil
			}
		case out := <-results:
			pending--
			if out.err == nil {
				if out.p != peers[0] {
					g.reg.Counter(MetricClusterReplicaSecondaryWins).Inc()
				}
				return out.v, nil, false
			}
			out.p.errs.Add(1)
			if errors.Is(out.err, ErrPeerUnreachable) {
				g.evict(out.p, "connection refused")
			} else if firstErr == nil {
				firstErr = out.err
			}
			if launched < len(peers) {
				g.reg.Counter(MetricClusterReplicaFailovers).Inc()
				launch()
				pending++
			} else if pending == 0 {
				if firstErr != nil {
					return nil, firstErr, false
				}
				return nil, ErrPeerUnreachable, true
			}
		}
	}
}

// writeUpstreamError maps a shard-side failure onto the gateway's own
// response. Validation never reaches a shard (the gateway mirrors the
// server's validators), so what lands here is availability: overload
// propagates as 503 with the shard's Retry-After, everything else is a
// 502 naming the gateway as the failing hop.
func (g *ClusterGateway) writeUpstreamError(w http.ResponseWriter, err error) {
	var over *OverloadedError
	switch {
	case errors.Is(err, errNoHealthyShards):
		w.Header().Set("Retry-After", strconv.Itoa(max(1, int(g.probeInterval.Seconds()))))
		writeError(w, http.StatusServiceUnavailable, "no healthy shards")
	case errors.As(err, &over):
		// Floor sub-second hints to 1s rather than dropping the header:
		// a missing Retry-After sends well-behaved clients into full
		// exponential backoff, the opposite of the shard's short hint.
		if over.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(max(1, int(over.RetryAfter.Seconds()))))
		}
		writeError(w, http.StatusServiceUnavailable, "shard overloaded: "+over.Message)
	default:
		writeError(w, http.StatusBadGateway, "upstream shard error: "+err.Error())
	}
}

func (g *ClusterGateway) handleStats(w http.ResponseWriter, r *http.Request) {
	// Every shard serves the same city, so stats (like the POI dump)
	// routes through the ring at a fixed key — deterministic, and it
	// inherits the same failover and replication as the query endpoints.
	v, err := g.callReplicated(r.Context(), 0, func(ctx context.Context, p *clusterPeer) (any, error) {
		return p.client.Stats(ctx)
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, *v.(*StatsResponse))
}

func (g *ClusterGateway) handlePOIs(w http.ResponseWriter, r *http.Request) {
	v, err := g.callReplicated(r.Context(), 0, func(ctx context.Context, p *clusterPeer) (any, error) {
		return p.client.POIs(ctx)
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, POIsResponse{POIs: v.([]poi.POI)})
}

func (g *ClusterGateway) handleFreq(w http.ResponseWriter, r *http.Request) {
	l, radius, ok := parseLocationQuery(w, r, g.maxRadius)
	if !ok {
		return
	}
	v, err := g.callReplicated(r.Context(), g.keyFor(l.X, l.Y), func(ctx context.Context, p *clusterPeer) (any, error) {
		return p.client.Freq(ctx, l, radius)
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FreqResponse{Freq: v.(poi.FreqVector)})
}

func (g *ClusterGateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	l, radius, ok := parseLocationQuery(w, r, g.maxRadius)
	if !ok {
		return
	}
	v, err := g.callReplicated(r.Context(), g.keyFor(l.X, l.Y), func(ctx context.Context, p *clusterPeer) (any, error) {
		return p.client.Query(ctx, l, radius)
	})
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{POIs: v.([]poi.POI)})
}

// authorizeClusterAdmin applies the membership surface's tenant rule,
// mirroring the budget admin endpoints: with auth disabled the caller
// is trusted; with auth enabled only the configured admin principal may
// mutate membership, and an unset admin principal refuses everyone.
func (g *ClusterGateway) authorizeClusterAdmin(w http.ResponseWriter, r *http.Request) bool {
	if g.auth == nil {
		return true
	}
	verified, _ := VerifiedPrincipal(r.Context())
	if g.adminPrincipal == "" || verified != g.adminPrincipal {
		writeAuthForbidden(w, fmt.Sprintf("principal %q may not administer cluster membership", verified))
		return false
	}
	return true
}

// peersResponse snapshots the membership for the admin surface.
func (g *ClusterGateway) peersResponse() ClusterPeersResponse {
	peers := g.table.snapshot()
	resp := ClusterPeersResponse{Peers: make([]ClusterPeerInfo, 0, len(peers))}
	for _, p := range peers {
		resp.Peers = append(resp.Peers, ClusterPeerInfo{
			URL:     p.url,
			Index:   p.index,
			Healthy: p.healthy.Load(),
		})
	}
	return resp
}

// handlePeersList reports the current membership. Read-only, so any
// authenticated principal may ask (auth still runs in the middleware).
func (g *ClusterGateway) handlePeersList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.peersResponse())
}

// handlePeerJoin admits a new shard: probe its readiness, pre-warm the
// cells the ring will move onto it, then atomically add it to the
// table, metrics, and ring. The member mutex serializes joins and
// leaves so two admins cannot interleave half-applied membership.
func (g *ClusterGateway) handlePeerJoin(w http.ResponseWriter, r *http.Request) {
	if !g.authorizeClusterAdmin(w, r) {
		return
	}
	var req ClusterJoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, g.maxBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "cluster join: bad request body: "+err.Error())
		return
	}
	u := strings.TrimRight(strings.TrimSpace(req.URL), "/")
	if u == "" {
		writeError(w, http.StatusBadRequest, "cluster join: url is required")
		return
	}
	g.memberMu.Lock()
	defer g.memberMu.Unlock()
	if _, dup := g.table.get(u); dup {
		writeError(w, http.StatusConflict, "cluster join: already a member: "+u)
		return
	}
	p := g.newPeer(u)
	if !g.probePeer(r.Context(), p) {
		writeError(w, http.StatusBadGateway, "cluster join: readiness probe failed: "+u)
		return
	}
	if err := g.prewarm(r.Context(), p); err != nil {
		g.reg.Counter(MetricClusterWarmErrors).Inc()
		status := http.StatusBadGateway
		if errors.Is(err, errWarmMismatch) {
			// The joiner answers differently than the fleet — wrong city
			// or wrong dataset. Admitting it would break byte-identity.
			status = http.StatusConflict
		}
		writeError(w, status, "cluster join: pre-warm failed: "+err.Error())
		return
	}
	g.table.add(p)
	g.exportPeerMetrics(p)
	p.healthy.Store(true)
	g.ring.Add(u)
	g.reg.Counter(MetricClusterJoins).Inc()
	g.log.Printf("cluster: joined shard %d (%s)", p.index, p.url)
	writeJSON(w, http.StatusOK, g.peersResponse())
}

// handlePeerLeave retires a member shard. The removed flag is set
// before the ring removal so a racing probe cannot restore the peer,
// and the last shard is refused — an empty fleet serves nothing.
func (g *ClusterGateway) handlePeerLeave(w http.ResponseWriter, r *http.Request) {
	if !g.authorizeClusterAdmin(w, r) {
		return
	}
	u := strings.TrimRight(strings.TrimSpace(r.PathValue("url")), "/")
	g.memberMu.Lock()
	defer g.memberMu.Unlock()
	p, ok := g.table.get(u)
	if !ok {
		writeError(w, http.StatusNotFound, "cluster leave: not a member: "+u)
		return
	}
	if g.table.len() == 1 {
		writeError(w, http.StatusConflict, "cluster leave: refusing to remove the last shard")
		return
	}
	p.removed.Store(true)
	p.healthy.Store(false)
	g.ring.Remove(u)
	g.table.remove(u)
	g.reg.Counter(MetricClusterLeaves).Inc()
	g.log.Printf("cluster: left shard %d (%s)", p.index, p.url)
	writeJSON(w, http.StatusOK, g.peersResponse())
}

// errWarmMismatch marks a pre-warm consistency failure: a donor and the
// joiner disagree on a cell's frequency vector.
var errWarmMismatch = errors.New("wire: pre-warm vector mismatch")

// prewarm replays the joining shard's incoming cells into its freq
// cache before the ring moves them: for every cell the post-join ring
// would assign to the joiner, the current owner (the donor) is asked
// for the cell's frequency vector and the joiner is driven through the
// same query — filling its cache so the join doesn't crater the fleet's
// hit rate — and the two answers are compared, which doubles as a
// consistency check that the joiner serves the same city. Cells beyond
// warmMaxCells are skipped (they warm from live traffic); any fetch
// error or vector mismatch aborts the join.
func (g *ClusterGateway) prewarm(ctx context.Context, joiner *clusterPeer) error {
	if g.warmMaxCells <= 0 {
		return nil
	}
	members := g.ring.Peers()
	if len(members) == 0 {
		return nil
	}
	var stats *StatsResponse
	var err error
	for _, u := range members {
		donor, ok := g.table.get(u)
		if !ok || !donor.healthy.Load() {
			continue
		}
		if stats, err = donor.client.Stats(ctx); err == nil {
			break
		}
	}
	if stats == nil {
		if err != nil {
			return fmt.Errorf("wire: pre-warm: city bounds: %w", err)
		}
		return nil // no healthy donor; nothing to warm from
	}

	// The moved-cell set is pure ring arithmetic: rebuild the current
	// membership on scratch rings with and without the joiner and diff
	// the ownership over the city's cell grid.
	before := cluster.New(g.vnodes)
	after := cluster.New(g.vnodes)
	for _, u := range members {
		before.Add(u)
		after.Add(u)
	}
	after.Add(joiner.url)

	type cellJob struct {
		l     geo.Point
		donor *clusterPeer
	}
	var jobs []cellJob
	dropped := 0
	cs := g.cellSize
	x0, y0 := cluster.CellOf(stats.Bounds.MinX, stats.Bounds.MinY, cs)
	x1, y1 := cluster.CellOf(stats.Bounds.MaxX, stats.Bounds.MaxY, cs)
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			key := cluster.Key(g.cityLabel, cx, cy)
			if newOwner, _ := after.Owner(key); newOwner != joiner.url {
				continue
			}
			oldOwner, ok := before.Owner(key)
			if !ok {
				continue
			}
			donor, ok := g.table.get(oldOwner)
			if !ok || !donor.healthy.Load() {
				continue
			}
			if len(jobs) >= g.warmMaxCells {
				dropped++
				continue
			}
			jobs = append(jobs, cellJob{
				l:     geo.Point{X: (float64(cx) + 0.5) * cs, Y: (float64(cy) + 0.5) * cs},
				donor: donor,
			})
		}
	}
	if dropped > 0 {
		g.log.Printf("cluster: pre-warm for %s capped at %d cells (%d skipped, will warm from traffic)",
			joiner.url, g.warmMaxCells, dropped)
	}
	radius := g.warmRadius
	if radius <= 0 {
		radius = cs
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, 8)
	for _, jb := range jobs {
		mu.Lock()
		abort := firstErr != nil
		mu.Unlock()
		if abort {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(jb cellJob) {
			defer wg.Done()
			defer func() { <-sem }()
			want, err := jb.donor.client.Freq(ctx, jb.l, radius)
			if err == nil {
				var got poi.FreqVector
				if got, err = joiner.client.Freq(ctx, jb.l, radius); err == nil && !want.Equal(got) {
					err = fmt.Errorf("%w: cell (%.0f, %.0f): joiner disagrees with donor %s",
						errWarmMismatch, jb.l.X, jb.l.Y, jb.donor.url)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			g.reg.Counter(MetricClusterWarmCells).Inc()
		}(jb)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if len(jobs) > 0 {
		g.log.Printf("cluster: pre-warmed %d cells into %s", len(jobs), joiner.url)
	}
	return nil
}

// admitBatch mirrors GSPServer.admitBatch: item-count weight against
// the gateway's own admission gate.
func (g *ClusterGateway) admitBatch(w http.ResponseWriter, r *http.Request, n int) (func(), bool) {
	if g.admit == nil {
		return func() {}, true
	}
	return g.admit.admitHTTP(w, r, int64(n))
}

// shardBatch is one shard's slice of a batch fan-out: the items it
// owns plus their positions in the caller's order.
type shardBatch struct {
	p     *clusterPeer
	items []BatchItem
	idx   []int
}

// splitByOwner validates every item and groups the valid ones by the
// shard owning each item's cell, preserving first-seen shard order.
// Invalid or unroutable items get their error recorded through reject.
func (g *ClusterGateway) splitByOwner(items []BatchItem, reject func(i int, msg string)) []*shardBatch {
	var order []*shardBatch
	byPeer := make(map[*clusterPeer]*shardBatch)
	for i, it := range items {
		if err := validateBatchItem(it, g.maxRadius); err != nil {
			reject(i, err.Error())
			continue
		}
		p, ok := g.ownerPeer(g.keyFor(it.X, it.Y))
		if !ok {
			reject(i, "no healthy shards")
			continue
		}
		sb := byPeer[p]
		if sb == nil {
			sb = &shardBatch{p: p}
			byPeer[p] = sb
			order = append(order, sb)
		}
		sb.items = append(sb.items, it)
		sb.idx = append(sb.idx, i)
	}
	return order
}

// shardItemError is the structured per-item error for a whole-shard
// failure mid-batch.
func shardItemError(p *clusterPeer, err error) string {
	switch {
	case errors.Is(err, ErrPeerUnreachable):
		return fmt.Sprintf("shard %d unreachable", p.index)
	case errors.Is(err, ErrOverloaded):
		return fmt.Sprintf("shard %d overloaded", p.index)
	default:
		return fmt.Sprintf("shard %d failed: %v", p.index, err)
	}
}

// fanOut runs one shard call per group concurrently and records the
// fan-out latency. call must only write results at its own group's
// indices — disjoint by construction, so the merge is lock-free.
func (g *ClusterGateway) fanOut(groups []*shardBatch, call func(sb *shardBatch)) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, sb := range groups {
		wg.Add(1)
		go func(sb *shardBatch) {
			defer wg.Done()
			sb.p.inflight.Add(1)
			defer sb.p.inflight.Add(-1)
			call(sb)
		}(sb)
	}
	wg.Wait()
	g.fanout.Observe(time.Since(start))
}

// shardCallFailed books a failed shard call and reports the per-item
// message; a refused connection additionally evicts the shard so the
// next request routes around it.
func (g *ClusterGateway) shardCallFailed(sb *shardBatch, err error) string {
	sb.p.errs.Add(1)
	if errors.Is(err, ErrPeerUnreachable) {
		g.evict(sb.p, "connection refused during fanout")
	}
	return shardItemError(sb.p, err)
}

func (g *ClusterGateway) handleFreqBatch(w http.ResponseWriter, r *http.Request) {
	items, ok := decodeBatchRequest(w, r, g.maxBody, g.maxBatch)
	if !ok {
		return
	}
	release, ok := g.admitBatch(w, r, len(items))
	if !ok {
		return
	}
	defer release()
	results := make([]FreqBatchResult, len(items))
	groups := g.splitByOwner(items, func(i int, msg string) { results[i].Error = msg })
	g.fanOut(groups, func(sb *shardBatch) {
		res, err := sb.p.client.FreqBatch(r.Context(), sb.items)
		if err != nil {
			msg := g.shardCallFailed(sb, err)
			for _, i := range sb.idx {
				results[i].Error = msg
			}
			return
		}
		for j := range res {
			results[sb.idx[j]] = res[j]
		}
	})
	writeJSON(w, http.StatusOK, FreqBatchResponse{Results: results})
}

func (g *ClusterGateway) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	items, ok := decodeBatchRequest(w, r, g.maxBody, g.maxBatch)
	if !ok {
		return
	}
	release, ok := g.admitBatch(w, r, len(items))
	if !ok {
		return
	}
	defer release()
	results := make([]QueryBatchResult, len(items))
	groups := g.splitByOwner(items, func(i int, msg string) { results[i].Error = msg })
	g.fanOut(groups, func(sb *shardBatch) {
		res, err := sb.p.client.QueryBatch(r.Context(), sb.items)
		if err != nil {
			msg := g.shardCallFailed(sb, err)
			for _, i := range sb.idx {
				results[i].Error = msg
			}
			return
		}
		for j := range res {
			results[sb.idx[j]] = res[j]
		}
	})
	writeJSON(w, http.StatusOK, QueryBatchResponse{Results: results})
}
