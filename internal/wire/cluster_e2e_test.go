package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"poiagg/internal/obs"
)

// This file is the proof layer of the cluster gateway: a fleet of gspd
// shards behind gspgw must be indistinguishable — byte for byte — from
// one gspd over the same city, across the full endpoint surface,
// with and without request signing; and when a shard dies mid-batch the
// gateway must degrade into structured per-item errors and converge
// back once the health probe sees the shard recover.

// killSwitch is a RoundTripper that simulates shard death: requests to
// a killed host fail with the same wrapped ECONNREFUSED a dead process
// produces, without closing the httptest listener (reopening a closed
// listener on the same port is racy; flipping a map entry is not).
type killSwitch struct {
	base http.RoundTripper

	mu   sync.Mutex
	dead map[string]bool
}

func newKillSwitch() *killSwitch {
	return &killSwitch{base: http.DefaultTransport, dead: make(map[string]bool)}
}

func hostOf(t testing.TB, baseURL string) string {
	t.Helper()
	u, err := url.Parse(baseURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func (k *killSwitch) set(host string, dead bool) {
	k.mu.Lock()
	k.dead[host] = dead
	k.mu.Unlock()
}

func (k *killSwitch) RoundTrip(req *http.Request) (*http.Response, error) {
	k.mu.Lock()
	dead := k.dead[req.URL.Host]
	k.mu.Unlock()
	if dead {
		return nil, refusedErr()
	}
	return k.base.RoundTrip(req)
}

// clusterHarness is one differential setup: nShards gspd shards behind
// a gateway, plus a single-node reference gspd over the same service.
type clusterHarness struct {
	single *httptest.Server // the reference
	gwTS   *httptest.Server
	gw     *ClusterGateway
	shards []*httptest.Server
	kill   *killSwitch
}

const (
	clusterPrincipal = "alice"
	gatewayPrincipal = "gateway"
)

// newClusterHarness builds the differential setup. With withAuth, the
// single node and the gateway both verify the client keyring (alice),
// the shards verify the gateway's key, and the gateway's peer clients
// re-sign as the gateway principal — the trust chain of a real
// deployment.
func newClusterHarness(t *testing.T, nShards int, withAuth bool) *clusterHarness {
	t.Helper()
	_, svc := wireFixture(t)
	quiet := WithLogger(log.New(io.Discard, "", 0))

	clientKR := NewKeyring()
	if err := clientKR.Add(clusterPrincipal, testKey('A')); err != nil {
		t.Fatal(err)
	}
	gwKey := testKey('G')
	shardKR := NewKeyring()
	if err := shardKR.Add(gatewayPrincipal, gwKey); err != nil {
		t.Fatal(err)
	}

	var shardOpts, singleOpts []GSPServerOption
	shardOpts = append(shardOpts, quiet)
	singleOpts = append(singleOpts, quiet)
	if withAuth {
		shardOpts = append(shardOpts, WithAuth(shardKR))
		singleOpts = append(singleOpts, WithAuth(clientKR))
	}

	h := &clusterHarness{kill: newKillSwitch()}
	h.single = httptest.NewServer(NewGSPServer(svc, singleOpts...))
	t.Cleanup(h.single.Close)

	peers := make([]string, nShards)
	for i := range peers {
		ts := httptest.NewServer(NewGSPServer(svc, shardOpts...))
		t.Cleanup(ts.Close)
		h.shards = append(h.shards, ts)
		peers[i] = ts.URL
	}

	peerOpts := []ClientOption{fastBackoff()}
	if withAuth {
		peerOpts = append(peerOpts, WithSigningKey(gatewayPrincipal, gwKey))
	}
	gwOpts := []ClusterOption{
		WithClusterLogger(log.New(io.Discard, "", 0)),
		WithPeerTransport(h.kill),
		WithPeerClientOptions(peerOpts...),
		WithProbeTimeout(200 * time.Millisecond),
	}
	if withAuth {
		gwOpts = append(gwOpts, WithAuth(clientKR))
	}
	gw, err := NewClusterGateway(peers, gwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	h.gw = gw
	h.gwTS = httptest.NewServer(gw)
	t.Cleanup(h.gwTS.Close)
	return h
}

// killShard makes one shard refuse connections; reviveShard undoes it.
func (h *clusterHarness) killShard(t testing.TB, i int) {
	h.kill.set(hostOf(t, h.shards[i].URL), true)
}

func (h *clusterHarness) reviveShard(t testing.TB, i int) {
	h.kill.set(hostOf(t, h.shards[i].URL), false)
}

// rawResponse is everything the differential assertion compares.
type rawResponse struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// send fires one request at base. If principal is non-empty the request
// is signed (same timestamp and nonce across both targets of a
// differential pair — each server sees the nonce once, and the
// canonical string excludes the host, so the signature is valid for
// both).
func (h *clusterHarness) send(t *testing.T, base, method, pathQuery string, body []byte,
	principal string, key []byte, at time.Time, nonce string) rawResponse {
	t.Helper()
	req, err := http.NewRequest(method, base+pathQuery, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if principal != "" {
		if err := SignRequest(req, body, principal, key, at, nonce); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rawResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        raw,
	}
}

var nonceCounter int

// assertIdentical sends the same request to the single-node reference
// and to the gateway and requires byte-identical responses.
func (h *clusterHarness) assertIdentical(t *testing.T, method, pathQuery string, body []byte, signed bool) {
	t.Helper()
	principal, key := "", []byte(nil)
	at, nonce := time.Time{}, ""
	if signed {
		principal, key = clusterPrincipal, testKey('A')
		at = time.Now()
		nonceCounter++
		nonce = fmt.Sprintf("d1f%013d", nonceCounter) // lowercase hex, as validNonce requires
	}
	ref := h.send(t, h.single.URL, method, pathQuery, body, principal, key, at, nonce)
	got := h.send(t, h.gwTS.URL, method, pathQuery, body, principal, key, at, nonce)
	if got.status != ref.status {
		t.Errorf("%s %s: gateway status %d, single-node %d (gateway body %q)",
			method, pathQuery, got.status, ref.status, got.body)
		return
	}
	if got.contentType != ref.contentType {
		t.Errorf("%s %s: gateway Content-Type %q, single-node %q",
			method, pathQuery, got.contentType, ref.contentType)
	}
	if !bytes.Equal(got.body, ref.body) {
		t.Errorf("%s %s: responses diverge\n gateway: %q\n single:  %q",
			method, pathQuery, got.body, ref.body)
	}
}

// freqBatchBody builds a batch body spraying n probes across the city,
// so a multi-shard gateway must split it across every shard.
func freqBatchBody(t testing.TB, n int, seed uint64) []byte {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{
			X: rng.Float64() * 12_000,
			Y: rng.Float64() * 12_000,
			R: 200 + rng.Float64()*1500,
		}
	}
	raw, err := json.Marshal(BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// differentialSurface is the full endpoint surface the e2e walks: the
// happy paths, every validation failure class, wrong methods, and an
// unknown route. The error strings come from the shared validators, so
// a divergence here means gateway and shard drifted apart.
func differentialSurface(t *testing.T) []struct {
	name, method, pathQuery string
	body                    []byte
} {
	t.Helper()
	bigBatch := freqBatchBody(t, DefaultMaxBatch+1, 9)
	mixedBatch := []byte(`{"items":[` +
		`{"x":6000,"y":6000,"r":800},` +
		`{"x":1,"y":2,"r":-5},` + // invalid radius
		`{"x":11000,"y":200,"r":400},` +
		`{"x":0,"y":0,"r":1e300},` + // radius beyond the cap
		`{"x":3000,"y":9000,"r":1200}]}`)
	return []struct {
		name, method, pathQuery string
		body                    []byte
	}{
		{"stats", http.MethodGet, PathStats, nil},
		{"pois", http.MethodGet, PathPOIs, nil},
		{"freq", http.MethodGet, PathFreq + "?x=6000&y=6000&r=900", nil},
		{"freq_far_corner", http.MethodGet, PathFreq + "?x=11900&y=150&r=400", nil},
		{"freq_outside_city", http.MethodGet, PathFreq + "?x=-4000&y=-4000&r=500", nil},
		{"query", http.MethodGet, PathQuery + "?x=4000&y=8000&r=700", nil},
		{"query_empty_region", http.MethodGet, PathQuery + "?x=-9000&y=-9000&r=10", nil},
		{"freq_malformed_x", http.MethodGet, PathFreq + "?x=abc&y=0&r=100", nil},
		{"freq_missing_r", http.MethodGet, PathFreq + "?x=1&y=2", nil},
		{"freq_radius_too_big", http.MethodGet, PathFreq + "?x=1&y=2&r=1e12", nil},
		{"freq_radius_negative", http.MethodGet, PathFreq + "?x=1&y=2&r=-1", nil},
		{"query_malformed_y", http.MethodGet, PathQuery + "?x=0&y=zz&r=100", nil},
		{"freq_wrong_method", http.MethodPost, PathFreq + "?x=1&y=2&r=100", []byte(`{}`)},
		{"batch_wrong_method", http.MethodGet, PathFreqBatch, nil},
		{"unknown_route", http.MethodGet, "/v1/nope", nil},
		{"freq_batch", http.MethodPost, PathFreqBatch, freqBatchBody(t, 64, 5)},
		{"query_batch", http.MethodPost, PathQueryBatch, freqBatchBody(t, 32, 6)},
		{"freq_batch_mixed_invalid", http.MethodPost, PathFreqBatch, mixedBatch},
		{"query_batch_mixed_invalid", http.MethodPost, PathQueryBatch, mixedBatch},
		{"freq_batch_empty", http.MethodPost, PathFreqBatch, []byte(`{"items":[]}`)},
		{"freq_batch_malformed", http.MethodPost, PathFreqBatch, []byte(`{"items":[`)},
		{"freq_batch_oversized", http.MethodPost, PathFreqBatch, bigBatch},
	}
}

// TestClusterDifferentialIdentical is the core tentpole assertion: for
// every request in the surface, a 3-shard cluster behind the gateway
// answers byte-identically to a single gspd.
func TestClusterDifferentialIdentical(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	for _, tc := range differentialSurface(t) {
		t.Run(tc.name, func(t *testing.T) {
			h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, false)
		})
	}
}

// TestClusterDifferentialSingleShard: the degenerate fleet of one must
// also be transparent — the split/merge machinery handles the
// everything-on-one-shard case.
func TestClusterDifferentialSingleShard(t *testing.T) {
	h := newClusterHarness(t, 1, false)
	for _, tc := range differentialSurface(t) {
		t.Run(tc.name, func(t *testing.T) {
			h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, false)
		})
	}
}

// TestClusterDifferentialAuth repeats the surface with request signing
// enabled end to end: alice's signature admits her at both the single
// node and the gateway, and the gateway re-signs toward the shards.
func TestClusterDifferentialAuth(t *testing.T) {
	h := newClusterHarness(t, 3, true)
	for _, tc := range differentialSurface(t) {
		t.Run(tc.name, func(t *testing.T) {
			h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, true)
		})
	}

	// The rejection side must be identical too: unsigned, wrong key, and
	// tampered-after-signing requests get the same structured 401 from
	// both. (Unsigned requests share one empty nonce — fine, they never
	// reach the replay cache.)
	t.Run("unsigned_rejected", func(t *testing.T) {
		h.assertIdentical(t, http.MethodGet, PathFreq+"?x=1&y=2&r=100", nil, false)
	})
	t.Run("wrong_key_rejected", func(t *testing.T) {
		ref := h.send(t, h.single.URL, http.MethodGet, PathStats, nil,
			clusterPrincipal, testKey('Z'), time.Now(), "deadbeef01")
		got := h.send(t, h.gwTS.URL, http.MethodGet, PathStats, nil,
			clusterPrincipal, testKey('Z'), time.Now(), "deadbeef02")
		if ref.status != http.StatusUnauthorized || got.status != ref.status {
			t.Errorf("wrong-key statuses: gateway %d, single %d, want 401 from both", got.status, ref.status)
		}
		if !bytes.Equal(got.body, ref.body) {
			t.Errorf("wrong-key 401 bodies diverge\n gateway: %q\n single:  %q", got.body, ref.body)
		}
	})
}

// TestClusterShardDeathMidBatch kills one of three shards and proves
// the contract of the ISSUE: the in-flight batch degrades into
// structured per-item errors for exactly the dead shard's items, the
// gateway evicts the shard, the next batch fully succeeds on the
// survivors, and a probe pass after recovery re-converges the ring to
// byte-identical behavior.
func TestClusterShardDeathMidBatch(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	ctx := context.Background()
	body := freqBatchBody(t, 96, 11)

	// Victim: whichever shard owns the first batch item, so the test is
	// deterministic regardless of ring layout.
	var items BatchRequest
	if err := json.Unmarshal(body, &items); err != nil {
		t.Fatal(err)
	}
	owner, ok := h.gw.ownerPeer(h.gw.keyFor(items.Items[0].X, items.Items[0].Y))
	if !ok {
		t.Fatal("ring empty")
	}
	victim := -1
	for i, ts := range h.shards {
		if ts.URL == owner.url {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %s not among shards", owner.url)
	}
	h.killShard(t, victim)

	resp := h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, body, "", nil, time.Time{}, "")
	if resp.status != http.StatusOK {
		t.Fatalf("batch with one dead shard returned %d: %s", resp.status, resp.body)
	}
	var out FreqBatchResponse
	if err := json.Unmarshal(resp.body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(items.Items) {
		t.Fatalf("merge lost items: %d results for %d items", len(out.Results), len(items.Items))
	}
	wantErr := fmt.Sprintf("shard %d unreachable", owner.index)
	failed, succeeded := 0, 0
	for i, res := range out.Results {
		switch {
		case res.Error == "":
			succeeded++
			if res.Freq == nil {
				t.Errorf("item %d: no error but no freq either", i)
			}
		case res.Error == wantErr:
			failed++
		default:
			t.Errorf("item %d: unexpected error %q", i, res.Error)
		}
	}
	if failed == 0 || succeeded == 0 {
		t.Fatalf("want a mix of per-item errors and successes, got %d failed / %d ok", failed, succeeded)
	}
	if res := out.Results[0]; res.Error != wantErr {
		t.Errorf("victim-owned item 0 error = %q, want %q", res.Error, wantErr)
	}

	// The refused connections evicted the victim, so the very next batch
	// routes entirely to survivors and fully succeeds.
	if h.gw.ring.Contains(owner.url) {
		t.Fatal("dead shard still on the ring after refused fanout")
	}
	resp = h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, body, "", nil, time.Time{}, "")
	if resp.status != http.StatusOK {
		t.Fatalf("post-eviction batch returned %d", resp.status)
	}
	out = FreqBatchResponse{}
	if err := json.Unmarshal(resp.body, &out); err != nil {
		t.Fatal(err)
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("post-eviction item %d still failing: %q", i, res.Error)
		}
	}

	// Recovery: revive the shard, run one probe pass, and the ring
	// converges back — the full differential surface holds again.
	h.reviveShard(t, victim)
	h.gw.ProbeOnce(ctx)
	if !h.gw.ring.Contains(owner.url) {
		t.Fatal("probe pass did not restore the recovered shard")
	}
	h.assertIdentical(t, http.MethodPost, PathFreqBatch, body, false)
	h.assertIdentical(t, http.MethodGet, PathFreq+"?x=6000&y=6000&r=900", nil, false)

	snap := fetchSnapshot(t, h.gwTS.URL)
	if snap.Counters[MetricClusterEvictions] < 1 {
		t.Errorf("evictions counter = %d, want >= 1", snap.Counters[MetricClusterEvictions])
	}
	if snap.Counters[MetricClusterRestores] < 1 {
		t.Errorf("restores counter = %d, want >= 1", snap.Counters[MetricClusterRestores])
	}
}

// TestClusterSingleQueryFailsOver: a plain GET whose owner is dead must
// not error — the gateway evicts the owner mid-request and retries
// against the key's new owner, still answering byte-identically.
func TestClusterSingleQueryFailsOver(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	const pathQuery = PathFreq + "?x=6000&y=6000&r=900"
	owner, ok := h.gw.ownerPeer(h.gw.keyFor(6000, 6000))
	if !ok {
		t.Fatal("ring empty")
	}
	for i, ts := range h.shards {
		if ts.URL == owner.url {
			h.killShard(t, i)
		}
	}
	h.assertIdentical(t, http.MethodGet, pathQuery, nil, false)
	if h.gw.ring.Contains(owner.url) {
		t.Error("failover did not evict the dead owner")
	}
	if now, _ := h.gw.ownerPeer(h.gw.keyFor(6000, 6000)); now == owner {
		t.Error("key still resolves to the dead shard")
	}
}

// TestClusterReadyzTracksFleet: with every shard dead the gateway fails
// its own readiness and answers queries 503 "no healthy shards"; one
// probe pass after recovery flips both back.
func TestClusterReadyzTracksFleet(t *testing.T) {
	h := newClusterHarness(t, 2, false)
	ctx := context.Background()
	for i := range h.shards {
		h.killShard(t, i)
	}
	h.gw.ProbeOnce(ctx)
	if n := h.gw.healthyCount(); n != 0 {
		t.Fatalf("healthyCount = %d after killing the fleet", n)
	}

	assertStatus := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(h.gwTS.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d (%s)", path, resp.StatusCode, want, body)
		}
	}
	assertStatus(obs.PathReadyz, http.StatusServiceUnavailable)
	assertStatus(obs.PathHealthz, http.StatusOK) // liveness is about the gateway process

	resp := h.send(t, h.gwTS.URL, http.MethodGet, PathFreq+"?x=1&y=2&r=100", nil, "", nil, time.Time{}, "")
	if resp.status != http.StatusServiceUnavailable {
		t.Fatalf("query against a dead fleet = %d, want 503", resp.status)
	}
	if !strings.Contains(string(resp.body), "no healthy shards") {
		t.Errorf("503 body does not name the condition: %s", resp.body)
	}
	if resp.retryAfter == "" {
		t.Error("fleet-down 503 carries no Retry-After")
	}

	for i := range h.shards {
		h.reviveShard(t, i)
	}
	h.gw.ProbeOnce(ctx)
	assertStatus(obs.PathReadyz, http.StatusOK)
	h.assertIdentical(t, http.MethodGet, PathFreq+"?x=1&y=2&r=100", nil, false)

	// Drain still wins over a healthy fleet, mirroring gspd.
	h.gw.Drain()
	assertStatus(obs.PathReadyz, http.StatusServiceUnavailable)
}

// TestClusterGatewayAdmissionAndLimits: the gateway enforces its own
// admission and body caps with the same envelopes as a gspd shard.
func TestClusterGatewayAdmissionAndLimits(t *testing.T) {
	_, svc := wireFixture(t)
	quiet := WithLogger(log.New(io.Discard, "", 0))
	shard := httptest.NewServer(NewGSPServer(svc, quiet))
	defer shard.Close()

	gw, err := NewClusterGateway([]string{shard.URL},
		WithClusterLogger(log.New(io.Discard, "", 0)),
		WithAdmission(1, 0, 0),
		WithMaxBody(128),
		WithClusterMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw)
	defer ts.Close()

	// Body over the gateway's own cap → 413 before any shard is dialed.
	resp, err := http.Post(ts.URL+PathFreqBatch, "application/json",
		bytes.NewReader(freqBatchBody(t, 8, 3)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", resp.StatusCode)
	}

	// Batch over the gateway's item cap → 400 with the shared message.
	small := []byte(`{"items":[{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9}]}`)
	resp, err = http.Post(ts.URL+PathFreqBatch, "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "exceeds limit 4") {
		t.Errorf("oversized batch = %d %s, want 400 naming the limit", resp.StatusCode, body)
	}

	// Admission: a batch holding the only slot sheds a concurrent one.
	release, ok := gw.admitBatch(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, PathFreqBatch, nil), 1)
	if !ok {
		t.Fatal("first admit failed")
	}
	resp, err = http.Get(ts.URL + PathFreq + "?x=1&y=2&r=50")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request at capacity = %d, want 503 shed", resp.StatusCode)
	}
	release()
	resp, err = http.Get(ts.URL + PathFreq + "?x=1&y=2&r=50")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release request = %d, want 200", resp.StatusCode)
	}
}

// TestClusterMetricsSurface: the gateway's registry exposes the fleet
// gauges and per-shard counters promised by the ISSUE.
func TestClusterMetricsSurface(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, freqBatchBody(t, 48, 21), "", nil, time.Time{}, "")
	snap := fetchSnapshot(t, h.gwTS.URL)

	for _, name := range []string{
		MetricClusterPeers, MetricClusterHealthy, MetricClusterUnhealthy,
		MetricClusterEvictions, MetricClusterRestores,
		MetricClusterProbesOK, MetricClusterProbesFail,
		"cluster.shard.0.inflight", "cluster.shard.1.errors", "cluster.shard.2.healthy",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if got := snap.Counters[MetricClusterPeers]; got != 3 {
		t.Errorf("cluster.peers = %d, want 3", got)
	}
	if got := snap.Counters[MetricClusterHealthy]; got != 3 {
		t.Errorf("cluster.healthy = %d, want 3", got)
	}
	lat, ok := snap.Latencies[MetricClusterFanout]
	if !ok || lat.Count == 0 {
		t.Errorf("fanout latency not recorded: %+v (present=%v)", lat, ok)
	}
}

// TestClusterConcurrentFanoutDuringMutation is the satellite race
// stress: batches fan out while a shard flaps dead/alive and probe
// passes mutate the ring concurrently. Run under -race this proves the
// gateway's eviction/restore CAS discipline; the assertions prove every
// response stays structurally sound (full-length, each item either a
// result or a shard error).
func TestClusterConcurrentFanoutDuringMutation(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	ctx := context.Background()
	const iters = 30

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Flapper: toggles shard 1 and immediately reconciles via probe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.killShard(t, 1)
			h.gw.ProbeOnce(ctx)
			h.reviveShard(t, 1)
			h.gw.ProbeOnce(ctx)
		}
	}()

	// Senders: concurrent batch fanouts the whole time.
	var senders sync.WaitGroup
	for s := 0; s < 4; s++ {
		senders.Add(1)
		go func(s int) {
			defer senders.Done()
			body := freqBatchBody(t, 32, uint64(100+s))
			for i := 0; i < iters; i++ {
				resp := h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, body, "", nil, time.Time{}, "")
				if resp.status != http.StatusOK {
					t.Errorf("sender %d iter %d: status %d", s, i, resp.status)
					return
				}
				var out FreqBatchResponse
				if err := json.Unmarshal(resp.body, &out); err != nil {
					t.Errorf("sender %d iter %d: %v", s, i, err)
					return
				}
				if len(out.Results) != 32 {
					t.Errorf("sender %d iter %d: %d results, want 32", s, i, len(out.Results))
					return
				}
				for j, res := range out.Results {
					if res.Error == "" && res.Freq == nil {
						t.Errorf("sender %d iter %d item %d: neither result nor error", s, i, j)
						return
					}
				}
			}
		}(s)
	}
	senders.Wait()
	close(stop)
	wg.Wait()

	// Quiesce and verify the fleet converged back to full health.
	h.reviveShard(t, 1)
	h.gw.ProbeOnce(ctx)
	if n := h.gw.healthyCount(); n != 3 {
		t.Errorf("fleet did not converge: %d healthy of 3", n)
	}
	h.assertIdentical(t, http.MethodPost, PathFreqBatch, freqBatchBody(t, 24, 77), false)
}
