package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/cluster"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
)

// This file is the proof layer of the cluster gateway: a fleet of gspd
// shards behind gspgw must be indistinguishable — byte for byte — from
// one gspd over the same city, across the full endpoint surface,
// with and without request signing; and when a shard dies mid-batch the
// gateway must degrade into structured per-item errors and converge
// back once the health probe sees the shard recover.

// killSwitch is a RoundTripper that simulates shard death: requests to
// a killed host fail with the same wrapped ECONNREFUSED a dead process
// produces, without closing the httptest listener (reopening a closed
// listener on the same port is racy; flipping a map entry is not).
type killSwitch struct {
	base http.RoundTripper

	mu       sync.Mutex
	dead     map[string]bool
	slow     map[string]time.Duration
	observer func(*http.Request)
}

func newKillSwitch() *killSwitch {
	return &killSwitch{
		base: http.DefaultTransport,
		dead: make(map[string]bool),
		slow: make(map[string]time.Duration),
	}
}

func hostOf(t testing.TB, baseURL string) string {
	t.Helper()
	u, err := url.Parse(baseURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func (k *killSwitch) set(host string, dead bool) {
	k.mu.Lock()
	k.dead[host] = dead
	k.mu.Unlock()
}

// lag injects latency ahead of every request to host (0 clears it).
func (k *killSwitch) lag(host string, d time.Duration) {
	k.mu.Lock()
	k.slow[host] = d
	k.mu.Unlock()
}

// observe installs a hook seeing every gateway→shard request (nil
// clears it). Dead-host requests are observed too — the hook sees what
// the gateway tried, not what succeeded.
func (k *killSwitch) observe(fn func(*http.Request)) {
	k.mu.Lock()
	k.observer = fn
	k.mu.Unlock()
}

func (k *killSwitch) RoundTrip(req *http.Request) (*http.Response, error) {
	k.mu.Lock()
	dead := k.dead[req.URL.Host]
	delay := k.slow[req.URL.Host]
	obsFn := k.observer
	k.mu.Unlock()
	if obsFn != nil {
		obsFn(req)
	}
	if dead {
		return nil, refusedErr()
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	return k.base.RoundTrip(req)
}

// clusterHarness is one differential setup: nShards gspd shards behind
// a gateway, plus a single-node reference gspd over the same service.
type clusterHarness struct {
	single    *httptest.Server // the reference
	gwTS      *httptest.Server
	gw        *ClusterGateway
	shards    []*httptest.Server
	kill      *killSwitch
	shardOpts []GSPServerOption
}

const (
	clusterPrincipal = "alice"
	gatewayPrincipal = "gateway"
	adminPrincipal   = "admin"
)

// newClusterHarness builds the differential setup. With withAuth, the
// single node and the gateway both verify the client keyring (alice
// plus the membership admin), the shards verify the gateway's key, and
// the gateway's peer clients re-sign as the gateway principal — the
// trust chain of a real deployment. extra options are appended to the
// gateway's, so tests can turn on replicas, membership admin, etc.
func newClusterHarness(t *testing.T, nShards int, withAuth bool, extra ...ClusterOption) *clusterHarness {
	t.Helper()
	_, svc := wireFixture(t)
	quiet := WithLogger(log.New(io.Discard, "", 0))

	clientKR := NewKeyring()
	if err := clientKR.Add(clusterPrincipal, testKey('A')); err != nil {
		t.Fatal(err)
	}
	if err := clientKR.Add(adminPrincipal, testKey('D')); err != nil {
		t.Fatal(err)
	}
	gwKey := testKey('G')
	shardKR := NewKeyring()
	if err := shardKR.Add(gatewayPrincipal, gwKey); err != nil {
		t.Fatal(err)
	}

	var shardOpts, singleOpts []GSPServerOption
	shardOpts = append(shardOpts, quiet)
	singleOpts = append(singleOpts, quiet)
	if withAuth {
		shardOpts = append(shardOpts, WithAuth(shardKR))
		singleOpts = append(singleOpts, WithAuth(clientKR))
	}

	h := &clusterHarness{kill: newKillSwitch(), shardOpts: shardOpts}
	h.single = httptest.NewServer(NewGSPServer(svc, singleOpts...))
	t.Cleanup(h.single.Close)

	peers := make([]string, nShards)
	for i := range peers {
		ts := h.newShard(t)
		h.shards = append(h.shards, ts)
		peers[i] = ts.URL
	}

	peerOpts := []ClientOption{fastBackoff()}
	if withAuth {
		peerOpts = append(peerOpts, WithSigningKey(gatewayPrincipal, gwKey))
	}
	gwOpts := []ClusterOption{
		WithClusterLogger(log.New(io.Discard, "", 0)),
		WithPeerTransport(h.kill),
		WithPeerClientOptions(peerOpts...),
		WithProbeTimeout(200 * time.Millisecond),
	}
	if withAuth {
		gwOpts = append(gwOpts, WithAuth(clientKR))
	}
	gwOpts = append(gwOpts, extra...)
	gw, err := NewClusterGateway(peers, gwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	h.gw = gw
	h.gwTS = httptest.NewServer(gw)
	t.Cleanup(h.gwTS.Close)
	return h
}

// newShard spins up another gspd over the harness's city with the same
// shard options — a spare ready to be joined through the admin surface.
func (h *clusterHarness) newShard(t testing.TB) *httptest.Server {
	t.Helper()
	_, svc := wireFixture(t)
	ts := httptest.NewServer(NewGSPServer(svc, h.shardOpts...))
	t.Cleanup(ts.Close)
	return ts
}

// killShard makes one shard refuse connections; reviveShard undoes it.
func (h *clusterHarness) killShard(t testing.TB, i int) {
	h.kill.set(hostOf(t, h.shards[i].URL), true)
}

func (h *clusterHarness) reviveShard(t testing.TB, i int) {
	h.kill.set(hostOf(t, h.shards[i].URL), false)
}

// rawResponse is everything the differential assertion compares.
type rawResponse struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// send fires one request at base. If principal is non-empty the request
// is signed (same timestamp and nonce across both targets of a
// differential pair — each server sees the nonce once, and the
// canonical string excludes the host, so the signature is valid for
// both).
func (h *clusterHarness) send(t *testing.T, base, method, pathQuery string, body []byte,
	principal string, key []byte, at time.Time, nonce string) rawResponse {
	t.Helper()
	req, err := http.NewRequest(method, base+pathQuery, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if principal != "" {
		if err := SignRequest(req, body, principal, key, at, nonce); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rawResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        raw,
	}
}

var nonceCounter int

// assertIdentical sends the same request to the single-node reference
// and to the gateway and requires byte-identical responses.
func (h *clusterHarness) assertIdentical(t *testing.T, method, pathQuery string, body []byte, signed bool) {
	t.Helper()
	principal, key := "", []byte(nil)
	at, nonce := time.Time{}, ""
	if signed {
		principal, key = clusterPrincipal, testKey('A')
		at = time.Now()
		nonceCounter++
		nonce = fmt.Sprintf("d1f%013d", nonceCounter) // lowercase hex, as validNonce requires
	}
	ref := h.send(t, h.single.URL, method, pathQuery, body, principal, key, at, nonce)
	got := h.send(t, h.gwTS.URL, method, pathQuery, body, principal, key, at, nonce)
	if got.status != ref.status {
		t.Errorf("%s %s: gateway status %d, single-node %d (gateway body %q)",
			method, pathQuery, got.status, ref.status, got.body)
		return
	}
	if got.contentType != ref.contentType {
		t.Errorf("%s %s: gateway Content-Type %q, single-node %q",
			method, pathQuery, got.contentType, ref.contentType)
	}
	if !bytes.Equal(got.body, ref.body) {
		t.Errorf("%s %s: responses diverge\n gateway: %q\n single:  %q",
			method, pathQuery, got.body, ref.body)
	}
}

// freqBatchBody builds a batch body spraying n probes across the city,
// so a multi-shard gateway must split it across every shard.
func freqBatchBody(t testing.TB, n int, seed uint64) []byte {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{
			X: rng.Float64() * 12_000,
			Y: rng.Float64() * 12_000,
			R: 200 + rng.Float64()*1500,
		}
	}
	raw, err := json.Marshal(BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// differentialSurface is the full endpoint surface the e2e walks: the
// happy paths, every validation failure class, wrong methods, and an
// unknown route. The error strings come from the shared validators, so
// a divergence here means gateway and shard drifted apart.
func differentialSurface(t *testing.T) []struct {
	name, method, pathQuery string
	body                    []byte
} {
	t.Helper()
	bigBatch := freqBatchBody(t, DefaultMaxBatch+1, 9)
	mixedBatch := []byte(`{"items":[` +
		`{"x":6000,"y":6000,"r":800},` +
		`{"x":1,"y":2,"r":-5},` + // invalid radius
		`{"x":11000,"y":200,"r":400},` +
		`{"x":0,"y":0,"r":1e300},` + // radius beyond the cap
		`{"x":3000,"y":9000,"r":1200}]}`)
	return []struct {
		name, method, pathQuery string
		body                    []byte
	}{
		{"stats", http.MethodGet, PathStats, nil},
		{"pois", http.MethodGet, PathPOIs, nil},
		{"freq", http.MethodGet, PathFreq + "?x=6000&y=6000&r=900", nil},
		{"freq_far_corner", http.MethodGet, PathFreq + "?x=11900&y=150&r=400", nil},
		{"freq_outside_city", http.MethodGet, PathFreq + "?x=-4000&y=-4000&r=500", nil},
		{"query", http.MethodGet, PathQuery + "?x=4000&y=8000&r=700", nil},
		{"query_empty_region", http.MethodGet, PathQuery + "?x=-9000&y=-9000&r=10", nil},
		{"freq_malformed_x", http.MethodGet, PathFreq + "?x=abc&y=0&r=100", nil},
		{"freq_missing_r", http.MethodGet, PathFreq + "?x=1&y=2", nil},
		{"freq_radius_too_big", http.MethodGet, PathFreq + "?x=1&y=2&r=1e12", nil},
		{"freq_radius_negative", http.MethodGet, PathFreq + "?x=1&y=2&r=-1", nil},
		{"query_malformed_y", http.MethodGet, PathQuery + "?x=0&y=zz&r=100", nil},
		{"freq_wrong_method", http.MethodPost, PathFreq + "?x=1&y=2&r=100", []byte(`{}`)},
		{"batch_wrong_method", http.MethodGet, PathFreqBatch, nil},
		{"unknown_route", http.MethodGet, "/v1/nope", nil},
		{"freq_batch", http.MethodPost, PathFreqBatch, freqBatchBody(t, 64, 5)},
		{"query_batch", http.MethodPost, PathQueryBatch, freqBatchBody(t, 32, 6)},
		{"freq_batch_mixed_invalid", http.MethodPost, PathFreqBatch, mixedBatch},
		{"query_batch_mixed_invalid", http.MethodPost, PathQueryBatch, mixedBatch},
		{"freq_batch_empty", http.MethodPost, PathFreqBatch, []byte(`{"items":[]}`)},
		{"freq_batch_malformed", http.MethodPost, PathFreqBatch, []byte(`{"items":[`)},
		{"freq_batch_oversized", http.MethodPost, PathFreqBatch, bigBatch},
	}
}

// TestClusterDifferentialIdentical is the core tentpole assertion: for
// every request in the surface, a 3-shard cluster behind the gateway
// answers byte-identically to a single gspd.
func TestClusterDifferentialIdentical(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	for _, tc := range differentialSurface(t) {
		t.Run(tc.name, func(t *testing.T) {
			h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, false)
		})
	}
}

// TestClusterDifferentialSingleShard: the degenerate fleet of one must
// also be transparent — the split/merge machinery handles the
// everything-on-one-shard case.
func TestClusterDifferentialSingleShard(t *testing.T) {
	h := newClusterHarness(t, 1, false)
	for _, tc := range differentialSurface(t) {
		t.Run(tc.name, func(t *testing.T) {
			h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, false)
		})
	}
}

// TestClusterDifferentialAuth repeats the surface with request signing
// enabled end to end: alice's signature admits her at both the single
// node and the gateway, and the gateway re-signs toward the shards.
func TestClusterDifferentialAuth(t *testing.T) {
	h := newClusterHarness(t, 3, true)
	for _, tc := range differentialSurface(t) {
		t.Run(tc.name, func(t *testing.T) {
			h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, true)
		})
	}

	// The rejection side must be identical too: unsigned, wrong key, and
	// tampered-after-signing requests get the same structured 401 from
	// both. (Unsigned requests share one empty nonce — fine, they never
	// reach the replay cache.)
	t.Run("unsigned_rejected", func(t *testing.T) {
		h.assertIdentical(t, http.MethodGet, PathFreq+"?x=1&y=2&r=100", nil, false)
	})
	t.Run("wrong_key_rejected", func(t *testing.T) {
		ref := h.send(t, h.single.URL, http.MethodGet, PathStats, nil,
			clusterPrincipal, testKey('Z'), time.Now(), "deadbeef01")
		got := h.send(t, h.gwTS.URL, http.MethodGet, PathStats, nil,
			clusterPrincipal, testKey('Z'), time.Now(), "deadbeef02")
		if ref.status != http.StatusUnauthorized || got.status != ref.status {
			t.Errorf("wrong-key statuses: gateway %d, single %d, want 401 from both", got.status, ref.status)
		}
		if !bytes.Equal(got.body, ref.body) {
			t.Errorf("wrong-key 401 bodies diverge\n gateway: %q\n single:  %q", got.body, ref.body)
		}
	})
}

// joinBody is the POST /v1/cluster/peers payload for peerURL.
func joinBody(peerURL string) []byte {
	return []byte(fmt.Sprintf(`{"url":%q}`, peerURL))
}

// adminSend fires one membership admin request at the gateway, signed
// as principal (with its harness keyring key) when signed is true.
func (h *clusterHarness) adminSend(t *testing.T, method, pathQuery string, body []byte, signed bool, principal string) rawResponse {
	t.Helper()
	var key []byte
	at, nonce := time.Time{}, ""
	if signed {
		switch principal {
		case adminPrincipal:
			key = testKey('D')
		case clusterPrincipal:
			key = testKey('A')
		default:
			t.Fatalf("adminSend: no key for principal %q", principal)
		}
		at = time.Now()
		nonceCounter++
		nonce = fmt.Sprintf("ad0%013d", nonceCounter)
	} else {
		principal = ""
	}
	return h.send(t, h.gwTS.URL, method, pathQuery, body, principal, key, at, nonce)
}

// leavePath is the DELETE route for one peer, URL path-escaped.
func leavePath(peerURL string) string {
	return PathClusterPeers + "/" + url.PathEscape(peerURL)
}

// TestClusterShardDeathMidBatch kills one of three shards and proves
// the contract of the ISSUE: the in-flight batch degrades into
// structured per-item errors for exactly the dead shard's items, the
// gateway evicts the shard, the next batch fully succeeds on the
// survivors, and a probe pass after recovery re-converges the ring to
// byte-identical behavior.
func TestClusterShardDeathMidBatch(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	ctx := context.Background()
	body := freqBatchBody(t, 96, 11)

	// Victim: whichever shard owns the first batch item, so the test is
	// deterministic regardless of ring layout.
	var items BatchRequest
	if err := json.Unmarshal(body, &items); err != nil {
		t.Fatal(err)
	}
	owner, ok := h.gw.ownerPeer(h.gw.keyFor(items.Items[0].X, items.Items[0].Y))
	if !ok {
		t.Fatal("ring empty")
	}
	victim := -1
	for i, ts := range h.shards {
		if ts.URL == owner.url {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %s not among shards", owner.url)
	}
	h.killShard(t, victim)

	resp := h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, body, "", nil, time.Time{}, "")
	if resp.status != http.StatusOK {
		t.Fatalf("batch with one dead shard returned %d: %s", resp.status, resp.body)
	}
	var out FreqBatchResponse
	if err := json.Unmarshal(resp.body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(items.Items) {
		t.Fatalf("merge lost items: %d results for %d items", len(out.Results), len(items.Items))
	}
	wantErr := fmt.Sprintf("shard %d unreachable", owner.index)
	failed, succeeded := 0, 0
	for i, res := range out.Results {
		switch {
		case res.Error == "":
			succeeded++
			if res.Freq == nil {
				t.Errorf("item %d: no error but no freq either", i)
			}
		case res.Error == wantErr:
			failed++
		default:
			t.Errorf("item %d: unexpected error %q", i, res.Error)
		}
	}
	if failed == 0 || succeeded == 0 {
		t.Fatalf("want a mix of per-item errors and successes, got %d failed / %d ok", failed, succeeded)
	}
	if res := out.Results[0]; res.Error != wantErr {
		t.Errorf("victim-owned item 0 error = %q, want %q", res.Error, wantErr)
	}

	// The refused connections evicted the victim, so the very next batch
	// routes entirely to survivors and fully succeeds.
	if h.gw.ring.Contains(owner.url) {
		t.Fatal("dead shard still on the ring after refused fanout")
	}
	resp = h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, body, "", nil, time.Time{}, "")
	if resp.status != http.StatusOK {
		t.Fatalf("post-eviction batch returned %d", resp.status)
	}
	out = FreqBatchResponse{}
	if err := json.Unmarshal(resp.body, &out); err != nil {
		t.Fatal(err)
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("post-eviction item %d still failing: %q", i, res.Error)
		}
	}

	// Recovery: revive the shard, run one probe pass, and the ring
	// converges back — the full differential surface holds again.
	h.reviveShard(t, victim)
	h.gw.ProbeOnce(ctx)
	if !h.gw.ring.Contains(owner.url) {
		t.Fatal("probe pass did not restore the recovered shard")
	}
	h.assertIdentical(t, http.MethodPost, PathFreqBatch, body, false)
	h.assertIdentical(t, http.MethodGet, PathFreq+"?x=6000&y=6000&r=900", nil, false)

	snap := fetchSnapshot(t, h.gwTS.URL)
	if snap.Counters[MetricClusterEvictions] < 1 {
		t.Errorf("evictions counter = %d, want >= 1", snap.Counters[MetricClusterEvictions])
	}
	if snap.Counters[MetricClusterRestores] < 1 {
		t.Errorf("restores counter = %d, want >= 1", snap.Counters[MetricClusterRestores])
	}
}

// TestClusterSingleQueryFailsOver: a plain GET whose owner is dead must
// not error — the gateway evicts the owner mid-request and retries
// against the key's new owner, still answering byte-identically.
func TestClusterSingleQueryFailsOver(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	const pathQuery = PathFreq + "?x=6000&y=6000&r=900"
	owner, ok := h.gw.ownerPeer(h.gw.keyFor(6000, 6000))
	if !ok {
		t.Fatal("ring empty")
	}
	for i, ts := range h.shards {
		if ts.URL == owner.url {
			h.killShard(t, i)
		}
	}
	h.assertIdentical(t, http.MethodGet, pathQuery, nil, false)
	if h.gw.ring.Contains(owner.url) {
		t.Error("failover did not evict the dead owner")
	}
	if now, _ := h.gw.ownerPeer(h.gw.keyFor(6000, 6000)); now == owner {
		t.Error("key still resolves to the dead shard")
	}
}

// TestClusterReadyzTracksFleet: with every shard dead the gateway fails
// its own readiness and answers queries 503 "no healthy shards"; one
// probe pass after recovery flips both back.
func TestClusterReadyzTracksFleet(t *testing.T) {
	h := newClusterHarness(t, 2, false)
	ctx := context.Background()
	for i := range h.shards {
		h.killShard(t, i)
	}
	h.gw.ProbeOnce(ctx)
	if n := h.gw.healthyCount(); n != 0 {
		t.Fatalf("healthyCount = %d after killing the fleet", n)
	}

	assertStatus := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(h.gwTS.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d (%s)", path, resp.StatusCode, want, body)
		}
	}
	assertStatus(obs.PathReadyz, http.StatusServiceUnavailable)
	assertStatus(obs.PathHealthz, http.StatusOK) // liveness is about the gateway process

	resp := h.send(t, h.gwTS.URL, http.MethodGet, PathFreq+"?x=1&y=2&r=100", nil, "", nil, time.Time{}, "")
	if resp.status != http.StatusServiceUnavailable {
		t.Fatalf("query against a dead fleet = %d, want 503", resp.status)
	}
	if !strings.Contains(string(resp.body), "no healthy shards") {
		t.Errorf("503 body does not name the condition: %s", resp.body)
	}
	if resp.retryAfter == "" {
		t.Error("fleet-down 503 carries no Retry-After")
	}

	for i := range h.shards {
		h.reviveShard(t, i)
	}
	h.gw.ProbeOnce(ctx)
	assertStatus(obs.PathReadyz, http.StatusOK)
	h.assertIdentical(t, http.MethodGet, PathFreq+"?x=1&y=2&r=100", nil, false)

	// Drain still wins over a healthy fleet, mirroring gspd.
	h.gw.Drain()
	assertStatus(obs.PathReadyz, http.StatusServiceUnavailable)
}

// TestClusterGatewayAdmissionAndLimits: the gateway enforces its own
// admission and body caps with the same envelopes as a gspd shard.
func TestClusterGatewayAdmissionAndLimits(t *testing.T) {
	_, svc := wireFixture(t)
	quiet := WithLogger(log.New(io.Discard, "", 0))
	shard := httptest.NewServer(NewGSPServer(svc, quiet))
	defer shard.Close()

	gw, err := NewClusterGateway([]string{shard.URL},
		WithClusterLogger(log.New(io.Discard, "", 0)),
		WithAdmission(1, 0, 0),
		WithMaxBody(128),
		WithClusterMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw)
	defer ts.Close()

	// Body over the gateway's own cap → 413 before any shard is dialed.
	resp, err := http.Post(ts.URL+PathFreqBatch, "application/json",
		bytes.NewReader(freqBatchBody(t, 8, 3)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", resp.StatusCode)
	}

	// Batch over the gateway's item cap → 400 with the shared message.
	small := []byte(`{"items":[{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9},{"x":1,"y":1,"r":9}]}`)
	resp, err = http.Post(ts.URL+PathFreqBatch, "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "exceeds limit 4") {
		t.Errorf("oversized batch = %d %s, want 400 naming the limit", resp.StatusCode, body)
	}

	// Admission: a batch holding the only slot sheds a concurrent one.
	release, ok := gw.admitBatch(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, PathFreqBatch, nil), 1)
	if !ok {
		t.Fatal("first admit failed")
	}
	resp, err = http.Get(ts.URL + PathFreq + "?x=1&y=2&r=50")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request at capacity = %d, want 503 shed", resp.StatusCode)
	}
	release()
	resp, err = http.Get(ts.URL + PathFreq + "?x=1&y=2&r=50")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release request = %d, want 200", resp.StatusCode)
	}
}

// TestClusterMetricsSurface: the gateway's registry exposes the fleet
// gauges and per-shard counters promised by the ISSUE.
func TestClusterMetricsSurface(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, freqBatchBody(t, 48, 21), "", nil, time.Time{}, "")
	snap := fetchSnapshot(t, h.gwTS.URL)

	for _, name := range []string{
		MetricClusterPeers, MetricClusterHealthy, MetricClusterUnhealthy,
		MetricClusterEvictions, MetricClusterRestores,
		MetricClusterProbesOK, MetricClusterProbesFail,
		"cluster.shard.0.inflight", "cluster.shard.1.errors", "cluster.shard.2.healthy",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if got := snap.Counters[MetricClusterPeers]; got != 3 {
		t.Errorf("cluster.peers = %d, want 3", got)
	}
	if got := snap.Counters[MetricClusterHealthy]; got != 3 {
		t.Errorf("cluster.healthy = %d, want 3", got)
	}
	lat, ok := snap.Latencies[MetricClusterFanout]
	if !ok || lat.Count == 0 {
		t.Errorf("fanout latency not recorded: %+v (present=%v)", lat, ok)
	}
}

// TestClusterConcurrentFanoutDuringMutation is the satellite race
// stress: batches fan out while a shard flaps dead/alive and probe
// passes mutate the ring concurrently. Run under -race this proves the
// gateway's eviction/restore CAS discipline; the assertions prove every
// response stays structurally sound (full-length, each item either a
// result or a shard error).
func TestClusterConcurrentFanoutDuringMutation(t *testing.T) {
	h := newClusterHarness(t, 3, false)
	ctx := context.Background()
	const iters = 30

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Flapper: toggles shard 1 and immediately reconciles via probe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.killShard(t, 1)
			h.gw.ProbeOnce(ctx)
			h.reviveShard(t, 1)
			h.gw.ProbeOnce(ctx)
		}
	}()

	// Senders: concurrent batch fanouts the whole time.
	var senders sync.WaitGroup
	for s := 0; s < 4; s++ {
		senders.Add(1)
		go func(s int) {
			defer senders.Done()
			body := freqBatchBody(t, 32, uint64(100+s))
			for i := 0; i < iters; i++ {
				resp := h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, body, "", nil, time.Time{}, "")
				if resp.status != http.StatusOK {
					t.Errorf("sender %d iter %d: status %d", s, i, resp.status)
					return
				}
				var out FreqBatchResponse
				if err := json.Unmarshal(resp.body, &out); err != nil {
					t.Errorf("sender %d iter %d: %v", s, i, err)
					return
				}
				if len(out.Results) != 32 {
					t.Errorf("sender %d iter %d: %d results, want 32", s, i, len(out.Results))
					return
				}
				for j, res := range out.Results {
					if res.Error == "" && res.Freq == nil {
						t.Errorf("sender %d iter %d item %d: neither result nor error", s, i, j)
						return
					}
				}
			}
		}(s)
	}
	senders.Wait()
	close(stop)
	wg.Wait()

	// Quiesce and verify the fleet converged back to full health.
	h.reviveShard(t, 1)
	h.gw.ProbeOnce(ctx)
	if n := h.gw.healthyCount(); n != 3 {
		t.Errorf("fleet did not converge: %d healthy of 3", n)
	}
	h.assertIdentical(t, http.MethodPost, PathFreqBatch, freqBatchBody(t, 24, 77), false)
}

// TestClusterProberReconcilesAtBoot is the regression test for the
// prober blind-spot bug: StartProber must run one synchronous
// reconciliation pass before its first tick, so a shard that is dead at
// gateway boot is off the ring before the gateway serves its first
// request — not after a full probeInterval of ErrPeerUnreachable
// failovers. The probe interval is an hour here: only the boot pass can
// evict the dead shard, and with the pre-fix StartProber the spray
// below routes ~1/3 of its queries into the dead host.
func TestClusterProberReconcilesAtBoot(t *testing.T) {
	h := newClusterHarness(t, 3, false, WithProbeInterval(time.Hour))
	deadHost := hostOf(t, h.shards[0].URL)
	h.killShard(t, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.gw.StartProber(ctx)

	if h.gw.ring.Contains(h.shards[0].URL) {
		t.Fatal("dead-at-boot shard still on the ring after StartProber returned")
	}

	// From the first request on, no traffic may be routed at the dead
	// shard (the boot probe itself is exempt — it must dial to learn).
	var mu sync.Mutex
	dialedDead := 0
	h.kill.observe(func(req *http.Request) {
		if req.URL.Host == deadHost && req.URL.Path != obs.PathReadyz {
			mu.Lock()
			dialedDead++
			mu.Unlock()
		}
	})
	defer h.kill.observe(nil)
	rng := rand.New(rand.NewPCG(41, 0))
	for i := 0; i < 60; i++ {
		x, y := rng.Float64()*12_000, rng.Float64()*12_000
		pathQuery := fmt.Sprintf("%s?x=%.0f&y=%.0f&r=400", PathFreq, x, y)
		resp := h.send(t, h.gwTS.URL, http.MethodGet, pathQuery, nil, "", nil, time.Time{}, "")
		if resp.status != http.StatusOK {
			t.Fatalf("query %d after boot probe = %d: %s", i, resp.status, resp.body)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if dialedDead != 0 {
		t.Errorf("%d requests routed to the dead-at-boot shard after StartProber", dialedDead)
	}
}

// TestClusterRetryAfterSubSecondHint is the regression test for the
// dropped-header bug: a shard shedding with a sub-second Retry-After
// hint must surface as a gateway 503 whose Retry-After is floored to 1,
// not silently dropped (which sends clients into full exponential
// backoff). Whole-second hints pass through; an absent hint stays
// absent.
func TestClusterRetryAfterSubSecondHint(t *testing.T) {
	gw, err := NewClusterGateway([]string{"http://unused.invalid:1"},
		WithClusterLogger(log.New(io.Discard, "", 0)))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		hint time.Duration
		want string
	}{
		{"sub_second_floored", 500 * time.Millisecond, "1"},
		{"whole_seconds_pass", 2 * time.Second, "2"},
		{"no_hint_no_header", 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			gw.writeUpstreamError(rec, &OverloadedError{
				Path: PathFreq, Message: "shed", RetryAfter: tc.hint,
			})
			if rec.Code != http.StatusServiceUnavailable {
				t.Fatalf("status = %d, want 503", rec.Code)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.want {
				t.Errorf("Retry-After = %q, want %q (hint %s)", got, tc.want, tc.hint)
			}
		})
	}
}

// TestClusterReplicaReads covers the replicated single-GET path: the
// common case stays one RPC under the hedging delay, a dead primary
// fails over to the next replica inside the same request, and a slow
// primary is hedged — with the replica.* metrics booking each event.
func TestClusterReplicaReads(t *testing.T) {
	const pathQuery = PathFreq + "?x=6000&y=6000&r=900"

	t.Run("common_case_one_rpc", func(t *testing.T) {
		h := newClusterHarness(t, 3, false, WithReplicas(3), WithHedgeDelay(2*time.Second))
		var mu sync.Mutex
		freqCalls := 0
		h.kill.observe(func(req *http.Request) {
			if req.URL.Path == PathFreq {
				mu.Lock()
				freqCalls++
				mu.Unlock()
			}
		})
		h.assertIdentical(t, http.MethodGet, pathQuery, nil, false)
		mu.Lock()
		defer mu.Unlock()
		if freqCalls != 1 {
			t.Errorf("healthy replicated GET made %d shard calls, want 1", freqCalls)
		}
	})

	t.Run("dead_primary_fails_over", func(t *testing.T) {
		h := newClusterHarness(t, 3, false, WithReplicas(2), WithHedgeDelay(2*time.Second))
		replicas := h.gw.replicaPeers(h.gw.keyFor(6000, 6000))
		if len(replicas) != 2 {
			t.Fatalf("replica set size %d, want 2", len(replicas))
		}
		for i, ts := range h.shards {
			if ts.URL == replicas[0].url {
				h.killShard(t, i)
			}
		}
		h.assertIdentical(t, http.MethodGet, pathQuery, nil, false)
		if h.gw.ring.Contains(replicas[0].url) {
			t.Error("dead primary not evicted by the replica failover")
		}
		snap := fetchSnapshot(t, h.gwTS.URL)
		if snap.Counters[MetricClusterReplicaFailovers] < 1 {
			t.Errorf("replica.failovers = %d, want >= 1", snap.Counters[MetricClusterReplicaFailovers])
		}
		if snap.Counters[MetricClusterReplicaSecondaryWins] < 1 {
			t.Errorf("replica.wins.secondary = %d, want >= 1", snap.Counters[MetricClusterReplicaSecondaryWins])
		}
	})

	t.Run("slow_primary_hedged", func(t *testing.T) {
		h := newClusterHarness(t, 3, false, WithReplicas(2), WithHedgeDelay(5*time.Millisecond))
		replicas := h.gw.replicaPeers(h.gw.keyFor(6000, 6000))
		h.kill.lag(hostOf(t, replicas[0].url), 300*time.Millisecond)
		defer h.kill.lag(hostOf(t, replicas[0].url), 0)
		h.assertIdentical(t, http.MethodGet, pathQuery, nil, false)
		snap := fetchSnapshot(t, h.gwTS.URL)
		if snap.Counters[MetricClusterReplicaHedges] < 1 {
			t.Errorf("replica.hedges = %d, want >= 1", snap.Counters[MetricClusterReplicaHedges])
		}
		if snap.Counters[MetricClusterReplicaSecondaryWins] < 1 {
			t.Errorf("replica.wins.secondary = %d, want >= 1", snap.Counters[MetricClusterReplicaSecondaryWins])
		}
	})
}

// TestClusterDifferentialReplicas re-runs the full differential surface
// with replication turned all the way up and an aggressive hedging
// delay, so most GETs race several shards: whoever wins, the response
// must stay byte-identical to the single gspd.
func TestClusterDifferentialReplicas(t *testing.T) {
	h := newClusterHarness(t, 3, false, WithReplicas(3), WithHedgeDelay(time.Millisecond))
	for _, tc := range differentialSurface(t) {
		t.Run(tc.name, func(t *testing.T) {
			h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, false)
		})
	}
}

// TestClusterMembershipAdminAuth pins the admin surface's tenant rules,
// mirroring the budget endpoints: unsigned mutations 401 under auth, a
// non-admin tenant's valid signature 403s, the admin principal passes,
// reads stay open to any verified principal — and a gateway with auth
// but no configured admin refuses every mutation (fail closed).
func TestClusterMembershipAdminAuth(t *testing.T) {
	h := newClusterHarness(t, 2, true, WithClusterAdmin(adminPrincipal))
	spare := h.newShard(t)

	if resp := h.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(spare.URL), false, ""); resp.status != http.StatusUnauthorized {
		t.Errorf("unsigned join = %d, want 401", resp.status)
	}
	resp := h.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(spare.URL), true, clusterPrincipal)
	if resp.status != http.StatusForbidden {
		t.Errorf("tenant-signed join = %d, want 403 (%s)", resp.status, resp.body)
	}
	if !strings.Contains(string(resp.body), "principal_mismatch") {
		t.Errorf("403 body lacks the structured reason: %s", resp.body)
	}
	resp = h.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(spare.URL), true, adminPrincipal)
	if resp.status != http.StatusOK {
		t.Fatalf("admin-signed join = %d (%s)", resp.status, resp.body)
	}
	var peers ClusterPeersResponse
	if err := json.Unmarshal(resp.body, &peers); err != nil {
		t.Fatal(err)
	}
	if len(peers.Peers) != 3 {
		t.Errorf("post-join membership %d, want 3", len(peers.Peers))
	}

	// Reads are open to any verified principal.
	if resp := h.adminSend(t, http.MethodGet, PathClusterPeers, nil, true, clusterPrincipal); resp.status != http.StatusOK {
		t.Errorf("tenant-signed list = %d, want 200", resp.status)
	}

	if resp := h.adminSend(t, http.MethodDelete, leavePath(spare.URL), nil, true, clusterPrincipal); resp.status != http.StatusForbidden {
		t.Errorf("tenant-signed leave = %d, want 403", resp.status)
	}
	if resp := h.adminSend(t, http.MethodDelete, leavePath(spare.URL), nil, true, adminPrincipal); resp.status != http.StatusOK {
		t.Errorf("admin-signed leave = %d (%s)", resp.status, resp.body)
	}

	// No admin configured: even the admin principal's valid signature is
	// refused — the gateway fails closed rather than guessing a tenant.
	closed := newClusterHarness(t, 2, true)
	if resp := closed.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(spare.URL), true, adminPrincipal); resp.status != http.StatusForbidden {
		t.Errorf("join without a configured admin = %d, want 403", resp.status)
	}
}

// TestClusterMembershipChurnDifferential is the acceptance-criteria
// e2e: a replica-enabled fleet undergoing a join → leave → rejoin churn
// sequence must stay byte-identical to a single gspd across the full
// endpoint surface after every transition, with auth both off and on.
func TestClusterMembershipChurnDifferential(t *testing.T) {
	for _, withAuth := range []bool{false, true} {
		t.Run(fmt.Sprintf("auth=%v", withAuth), func(t *testing.T) {
			h := newClusterHarness(t, 2, withAuth,
				WithReplicas(2),
				WithClusterAdmin(adminPrincipal),
				WithWarmMaxCells(64))
			spare := h.newShard(t)
			surface := differentialSurface(t)
			runSurface := func(stage string) {
				t.Helper()
				for _, tc := range surface {
					h.assertIdentical(t, tc.method, tc.pathQuery, tc.body, withAuth)
				}
				if t.Failed() {
					t.Fatalf("surface diverged after %s", stage)
				}
			}
			join := func(u string) {
				t.Helper()
				if resp := h.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(u), withAuth, adminPrincipal); resp.status != http.StatusOK {
					t.Fatalf("join %s = %d (%s)", u, resp.status, resp.body)
				}
			}
			leave := func(u string) {
				t.Helper()
				if resp := h.adminSend(t, http.MethodDelete, leavePath(u), nil, withAuth, adminPrincipal); resp.status != http.StatusOK {
					t.Fatalf("leave %s = %d (%s)", u, resp.status, resp.body)
				}
			}

			runSurface("boot")
			join(spare.URL)
			runSurface("join")
			leave(h.shards[0].URL)
			runSurface("leave")
			join(h.shards[0].URL)
			runSurface("rejoin")

			snap := fetchSnapshot(t, h.gwTS.URL)
			if got := snap.Counters[MetricClusterJoins]; got != 2 {
				t.Errorf("membership.joins = %d, want 2", got)
			}
			if got := snap.Counters[MetricClusterLeaves]; got != 1 {
				t.Errorf("membership.leaves = %d, want 1", got)
			}
			if got := snap.Counters[MetricClusterWarmCells]; got < 1 {
				t.Errorf("warm.cells = %d, want >= 1", got)
			}
			if got := snap.Counters[MetricClusterPeers]; got != 3 {
				t.Errorf("cluster.peers = %d, want 3 after churn", got)
			}
		})
	}
}

// TestClusterPreWarmReplaysMovedCells proves the pre-warm protocol does
// exactly what DESIGN.md says: for every cell the post-join ring moves
// onto the joiner, the donor (the cell's current owner) is asked for
// its frequency vector once and the joiner is driven through the same
// query once — and nothing else is warmed.
func TestClusterPreWarmReplaysMovedCells(t *testing.T) {
	h := newClusterHarness(t, 2, false)
	spare := h.newShard(t)

	// City bounds from the reference node, then the same scratch-ring
	// arithmetic the gateway uses to compute the moved-cell set.
	resp := h.send(t, h.single.URL, http.MethodGet, PathStats, nil, "", nil, time.Time{}, "")
	var stats StatsResponse
	if err := json.Unmarshal(resp.body, &stats); err != nil {
		t.Fatal(err)
	}
	before := cluster.New(cluster.DefaultVirtualNodes)
	after := cluster.New(cluster.DefaultVirtualNodes)
	for _, ts := range h.shards {
		before.Add(ts.URL)
		after.Add(ts.URL)
	}
	after.Add(spare.URL)
	cs := cluster.DefaultCellSize
	type warmReq struct{ host, query string }
	expected := make(map[warmReq]int)
	movedCells := 0
	x0, y0 := cluster.CellOf(stats.Bounds.MinX, stats.Bounds.MinY, cs)
	x1, y1 := cluster.CellOf(stats.Bounds.MaxX, stats.Bounds.MaxY, cs)
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			key := cluster.Key("", cx, cy)
			if newOwner, _ := after.Owner(key); newOwner != spare.URL {
				continue
			}
			donor, _ := before.Owner(key)
			movedCells++
			l := geo.Point{X: (float64(cx) + 0.5) * cs, Y: (float64(cy) + 0.5) * cs}
			query := locationParams(l, cs).Encode()
			expected[warmReq{hostOf(t, donor), query}]++
			expected[warmReq{hostOf(t, spare.URL), query}]++
		}
	}
	if movedCells == 0 {
		t.Fatal("ring arithmetic moved no cells to the joiner")
	}

	var mu sync.Mutex
	got := make(map[warmReq]int)
	h.kill.observe(func(req *http.Request) {
		if req.URL.Path != PathFreq {
			return
		}
		mu.Lock()
		got[warmReq{req.URL.Host, req.URL.Query().Encode()}]++
		mu.Unlock()
	})
	if resp := h.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(spare.URL), false, ""); resp.status != http.StatusOK {
		t.Fatalf("join = %d (%s)", resp.status, resp.body)
	}
	h.kill.observe(nil)

	mu.Lock()
	defer mu.Unlock()
	for want, n := range expected {
		if got[want] != n {
			t.Errorf("warm request %s?%s seen %d times, want %d", want.host, want.query, got[want], n)
		}
	}
	for seen := range got {
		if _, ok := expected[seen]; !ok {
			t.Errorf("unexpected warm request %s?%s", seen.host, seen.query)
		}
	}
	snap := fetchSnapshot(t, h.gwTS.URL)
	if got := snap.Counters[MetricClusterWarmCells]; got != uint64(movedCells) {
		t.Errorf("warm.cells = %d, want %d", got, movedCells)
	}
}

// TestClusterJoinRejectsMismatchedCity: pre-warm doubles as a
// consistency gate. A candidate shard serving a different city answers
// the warm queries differently than its donors, so the join must be
// refused with a 409 and the fleet must keep serving byte-identically —
// admitting the alien shard would break the gateway's core invariant.
func TestClusterJoinRejectsMismatchedCity(t *testing.T) {
	h := newClusterHarness(t, 2, false)
	p := citygen.Beijing(97)
	p.NumPOIs = 800
	p.NumTypes = 60
	p.Width, p.Height = 12_000, 12_000
	alienCity, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	alien := httptest.NewServer(NewGSPServer(gsp.NewService(alienCity.City, 1<<12),
		WithLogger(log.New(io.Discard, "", 0))))
	defer alien.Close()

	resp := h.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(alien.URL), false, "")
	if resp.status != http.StatusConflict {
		t.Fatalf("alien join = %d, want 409 (%s)", resp.status, resp.body)
	}
	if !strings.Contains(string(resp.body), "pre-warm") {
		t.Errorf("409 body does not name pre-warm: %s", resp.body)
	}
	if h.gw.ring.Contains(alien.URL) {
		t.Error("alien shard leaked onto the ring")
	}
	if _, ok := h.gw.table.get(alien.URL); ok {
		t.Error("alien shard leaked into the peer table")
	}
	snap := fetchSnapshot(t, h.gwTS.URL)
	if got := snap.Counters[MetricClusterWarmErrors]; got < 1 {
		t.Errorf("warm.errors = %d, want >= 1", got)
	}
	h.assertIdentical(t, http.MethodGet, PathFreq+"?x=6000&y=6000&r=900", nil, false)
	h.assertIdentical(t, http.MethodPost, PathFreqBatch, freqBatchBody(t, 32, 55), false)
}

// TestClusterConcurrentMembershipChurn is the satellite race stress:
// admin joins and leaves churn a spare shard while single GETs and
// batch fan-outs hammer the gateway. Under -race this proves the peer
// table / ring / metrics locking; the assertions prove every in-flight
// response stays structurally sound across membership transitions.
func TestClusterConcurrentMembershipChurn(t *testing.T) {
	h := newClusterHarness(t, 3, false, WithReplicas(2), WithWarmMaxCells(4))
	spare := h.newShard(t)

	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < 10; i++ {
			if resp := h.adminSend(t, http.MethodPost, PathClusterPeers, joinBody(spare.URL), false, ""); resp.status != http.StatusOK {
				t.Errorf("churn join %d = %d (%s)", i, resp.status, resp.body)
				return
			}
			if resp := h.adminSend(t, http.MethodDelete, leavePath(spare.URL), nil, false, ""); resp.status != http.StatusOK {
				t.Errorf("churn leave %d = %d (%s)", i, resp.status, resp.body)
				return
			}
		}
	}()

	var senders sync.WaitGroup
	for s := 0; s < 4; s++ {
		senders.Add(1)
		go func(s int) {
			defer senders.Done()
			rng := rand.New(rand.NewPCG(uint64(900+s), 0))
			body := freqBatchBody(t, 24, uint64(300+s))
			for i := 0; i < 25; i++ {
				x, y := rng.Float64()*12_000, rng.Float64()*12_000
				pathQuery := fmt.Sprintf("%s?x=%.0f&y=%.0f&r=500", PathFreq, x, y)
				if resp := h.send(t, h.gwTS.URL, http.MethodGet, pathQuery, nil, "", nil, time.Time{}, ""); resp.status != http.StatusOK {
					t.Errorf("sender %d iter %d: GET = %d (%s)", s, i, resp.status, resp.body)
					return
				}
				resp := h.send(t, h.gwTS.URL, http.MethodPost, PathFreqBatch, body, "", nil, time.Time{}, "")
				if resp.status != http.StatusOK {
					t.Errorf("sender %d iter %d: batch = %d", s, i, resp.status)
					return
				}
				var out FreqBatchResponse
				if err := json.Unmarshal(resp.body, &out); err != nil {
					t.Errorf("sender %d iter %d: %v", s, i, err)
					return
				}
				if len(out.Results) != 24 {
					t.Errorf("sender %d iter %d: %d results, want 24", s, i, len(out.Results))
					return
				}
				for j, res := range out.Results {
					if res.Error == "" && res.Freq == nil {
						t.Errorf("sender %d iter %d item %d: neither result nor error", s, i, j)
						return
					}
				}
			}
		}(s)
	}
	senders.Wait()
	churn.Wait()

	// Quiesce: whatever state the churn ended in, the fleet must still
	// answer byte-identically.
	h.gw.ProbeOnce(context.Background())
	h.assertIdentical(t, http.MethodPost, PathFreqBatch, freqBatchBody(t, 24, 78), false)
	h.assertIdentical(t, http.MethodGet, PathFreq+"?x=6000&y=6000&r=900", nil, false)
}
