package wire

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"

	"poiagg/internal/citygen"
	"poiagg/internal/defense"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
)

// fetchSnapshot GETs /v1/metrics from a test server and decodes it.
func fetchSnapshot(t *testing.T, baseURL string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + obs.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s returned %d", obs.PathMetrics, resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func assertProbe(t *testing.T, baseURL, path string) {
	t.Helper()
	resp, err := http.Get(baseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("%s = %d", path, resp.StatusCode)
	}
	var v map[string]string
	if err := json.Unmarshal(body, &v); err != nil {
		t.Errorf("%s body is not JSON: %q", path, body)
	}
}

// TestE2EUserFlowWithMetrics boots a GSP and an LBS over real sockets
// and drives the paper's full user flow — Freq from the GSP, the
// optimization defense on the vector, the release POSTed to the auditing
// LBS — then asserts the audit outcomes and that /v1/metrics on both
// handlers counted every request with matching latency tallies.
// Table-driven over the two city presets.
func TestE2EUserFlowWithMetrics(t *testing.T) {
	cases := []struct {
		name   string
		params citygen.Params
	}{
		{"beijing", citygen.Beijing(41)},
		{"nyc", citygen.NewYork(43)},
	}
	totalRawReID := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.params
			p.NumPOIs = 2000
			p.NumTypes = 60
			p.Width, p.Height = 12_000, 12_000
			city, err := citygen.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			svc := gsp.NewService(city.City, 1<<14)

			gspSrv := httptest.NewServer(NewGSPServer(svc, WithLogger(log.New(io.Discard, "", 0))))
			defer gspSrv.Close()
			lbsSrv := httptest.NewServer(NewLBSServer(city.M(),
				WithAuditor(RegionAuditor{Svc: svc})))
			defer lbsSrv.Close()

			clientReg := obs.NewRegistry()
			gspClient := NewGSPClient(gspSrv.URL, gspSrv.Client(),
				WithRetries(2), WithClientMetrics(clientReg))
			lbsClient := NewLBSClient(lbsSrv.URL, lbsSrv.Client(),
				WithRetries(2), WithClientMetrics(clientReg))
			opt, err := defense.NewOptRelease(city.City)
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			const r = 1000.0
			locs := city.RandomLocations(25, 44)
			rawReID, defendedReID := 0, 0
			for i, l := range locs {
				f, err := gspClient.Freq(ctx, l, r)
				if err != nil {
					t.Fatal(err)
				}
				user := "user-" + string(rune('a'+i%26))

				raw, err := lbsClient.Release(ctx, ReleaseRequest{UserID: user, Freq: f, R: r})
				if err != nil {
					t.Fatal(err)
				}
				if !raw.Accepted || !raw.Audited {
					t.Fatalf("raw release not audited: %+v", raw)
				}
				if raw.ReIdentified {
					rawReID++
				}

				protected, err := opt.Solve(f, 0.5)
				if err != nil {
					t.Fatal(err)
				}
				def, err := lbsClient.Release(ctx, ReleaseRequest{UserID: user, Freq: protected, R: r})
				if err != nil {
					t.Fatal(err)
				}
				if !def.Accepted || !def.Audited {
					t.Fatalf("defended release not audited: %+v", def)
				}
				if def.ReIdentified {
					defendedReID++
				}
			}
			totalRawReID += rawReID
			if defendedReID > rawReID {
				t.Errorf("optimization defense increased re-identification: raw %d, defended %d",
					rawReID, defendedReID)
			}

			// One history read on top of the releases.
			hist, err := lbsClient.Releases(ctx, "user-a")
			if err != nil {
				t.Fatal(err)
			}
			if len(hist.Releases) == 0 {
				t.Error("user-a has no stored releases")
			}

			// Health and readiness on both daemons' handlers.
			for _, base := range []string{gspSrv.URL, lbsSrv.URL} {
				assertProbe(t, base, obs.PathHealthz)
				assertProbe(t, base, obs.PathReadyz)
			}

			// The metrics endpoints must have counted every request.
			n := uint64(len(locs))
			gspSnap := fetchSnapshot(t, gspSrv.URL)
			freq := gspSnap.Routes["GET "+PathFreq]
			if freq.Requests != n || freq.Status["2xx"] != n || freq.Latency.Count != n {
				t.Errorf("GSP freq route = %+v, want %d requests", freq, n)
			}
			if freq.InFlight != 0 {
				t.Errorf("GSP freq in-flight = %d after quiesce", freq.InFlight)
			}
			if freq.Latency.MaxMs < freq.Latency.P50Ms || freq.Latency.P99Ms < freq.Latency.P50Ms {
				t.Errorf("inconsistent latency quantiles: %+v", freq.Latency)
			}

			lbsSnap := fetchSnapshot(t, lbsSrv.URL)
			rel := lbsSnap.Routes["POST "+PathRelease]
			if rel.Requests != 2*n || rel.Status["2xx"] != 2*n || rel.Latency.Count != 2*n {
				t.Errorf("LBS release route = %+v, want %d requests", rel, 2*n)
			}
			if got := lbsSnap.Routes["GET "+PathReleases].Requests; got != 1 {
				t.Errorf("LBS releases route counted %d, want 1", got)
			}

			// Client-side counters: every call one attempt, no retries
			// against healthy servers.
			attempts := clientReg.Counter(MetricClientAttempts).Value()
			if want := 3*n + 1; attempts != want {
				t.Errorf("client attempts = %d, want %d", attempts, want)
			}
			if retries := clientReg.Counter(MetricClientRetries).Value(); retries != 0 {
				t.Errorf("client retried %d times against healthy servers", retries)
			}
		})
	}
	if totalRawReID == 0 {
		t.Error("no raw release was re-identified in any city; audit signal missing")
	}
}
