package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/obs"
	"poiagg/internal/stream"
)

// faultAction is one scripted behavior of the fault-injection transport.
type faultAction int

const (
	actOK       faultAction = iota // pass through to the real server
	act503                         // synthesize a 503 burst response
	actDrop                        // fail at the transport (connection reset)
	actDelay                       // stall before passing through
	act429                         // synthesize a 429 budget denial with a structured body
	act503Retry                    // synthesize an admission shed: 503 + Retry-After + structured body
	act401                         // synthesize an auth rejection with a structured body
	actRefused                     // fail at the transport (connection refused — dead peer)
	act413                         // synthesize a body-too-large rejection with a structured body
)

// refusedErr mirrors what net.Dialer returns against a closed port, so
// the classifier's errors.Is(err, syscall.ECONNREFUSED) check is
// exercised through the same wrapping chain as in production.
func refusedErr() error {
	return &net.OpError{
		Op:   "dial",
		Net:  "tcp",
		Addr: &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1},
		Err:  os.NewSyscallError("connect", syscall.ECONNREFUSED),
	}
}

// faultTransport is a test-only RoundTripper that injects failures
// according to a per-call script; calls beyond the script pass through.
type faultTransport struct {
	base  http.RoundTripper
	delay time.Duration

	mu     sync.Mutex
	script []faultAction
	calls  int
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	act := actOK
	if ft.calls < len(ft.script) {
		act = ft.script[ft.calls]
	}
	ft.calls++
	ft.mu.Unlock()

	switch act {
	case act503:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader(`{"error":"injected overload"}`)),
			Request: req,
		}, nil
	case act503Retry:
		h := make(http.Header)
		h.Set("Retry-After", "1")
		h.Set("Content-Type", "application/json")
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header: h,
			Body: io.NopCloser(strings.NewReader(
				`{"error":"server overloaded, request shed (queue_full)","reason":"queue_full","retryAfterSeconds":1}`)),
			Request: req,
		}, nil
	case act401:
		h := make(http.Header)
		h.Set("Content-Type", "application/json")
		return &http.Response{
			Status:     "401 Unauthorized",
			StatusCode: http.StatusUnauthorized,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header: h,
			Body: io.NopCloser(strings.NewReader(
				`{"error":"unauthorized: signature does not match request","reason":"bad_signature"}`)),
			Request: req,
		}, nil
	case act413:
		h := make(http.Header)
		h.Set("Content-Type", "application/json")
		return &http.Response{
			Status:     "413 Request Entity Too Large",
			StatusCode: http.StatusRequestEntityTooLarge,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header: h,
			Body: io.NopCloser(strings.NewReader(
				`{"error":"request body exceeds 1048576 bytes"}`)),
			Request: req,
		}, nil
	case actDrop:
		return nil, errors.New("faultproxy: connection reset by peer")
	case actRefused:
		return nil, refusedErr()
	case act429:
		return &http.Response{
			Status:     "429 Too Many Requests",
			StatusCode: http.StatusTooManyRequests,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header: make(http.Header),
			Body: io.NopCloser(strings.NewReader(
				`{"error":"privacy budget denied (window)","budget":` +
					`{"principal":"alice","spentEps":1.5,"spentDelta":0,` +
					`"remainingEps":98.5,"remainingDelta":0,` +
					`"windowRemainingEps":0,"windowRemainingDelta":0,` +
					`"releases":3,"denial":"window","retryAfterSeconds":3600}}`)),
			Request: req,
		}, nil
	case actDelay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(ft.delay):
		}
	}
	return ft.base.RoundTrip(req)
}

func (ft *faultTransport) callCount() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.calls
}

// trackingTransport wraps every response body so the test can prove the
// client never leaks one, across successes, retries, and error paths.
type trackingTransport struct {
	base   http.RoundTripper
	opened atomic.Int64
	open   atomic.Int64
}

func (tt *trackingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := tt.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	tt.opened.Add(1)
	tt.open.Add(1)
	resp.Body = &trackedBody{ReadCloser: resp.Body, open: &tt.open}
	return resp, nil
}

type trackedBody struct {
	io.ReadCloser
	open   *atomic.Int64
	closed atomic.Bool
}

func (b *trackedBody) Close() error {
	if b.closed.CompareAndSwap(false, true) {
		b.open.Add(-1)
	}
	return b.ReadCloser.Close()
}

// faultyGSPClient builds a GSP client whose transport runs through the
// fault script and body tracker.
func faultyGSPClient(t *testing.T, script []faultAction, delay time.Duration, opts ...ClientOption) (*GSPClient, *faultTransport, *trackingTransport) {
	t.Helper()
	ts, _ := newGSPTestServer(t)
	ft := &faultTransport{base: http.DefaultTransport, script: script, delay: delay}
	tt := &trackingTransport{base: ft}
	hc := &http.Client{Transport: tt}
	client := NewGSPClient(ts.URL, hc, opts...)
	t.Cleanup(func() {
		if n := tt.open.Load(); n != 0 {
			t.Errorf("%d of %d response bodies leaked", n, tt.opened.Load())
		}
		hc.CloseIdleConnections()
	})
	return client, ft, tt
}

func fastBackoff() ClientOption { return WithBackoff(time.Millisecond, 4*time.Millisecond) }

// faultyLBSClient builds a streaming-enabled LBS client whose transport
// runs through the fault script and body tracker.
func faultyLBSClient(t *testing.T, script []faultAction, opts ...ClientOption) (*LBSClient, *faultTransport, *trackingTransport) {
	t.Helper()
	city, _ := wireFixture(t)
	st, err := stream.NewStore(stream.Config{MaxUsers: 16, Bounds: city.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewLBSServer(city.M(), WithStream(st, nil)))
	t.Cleanup(ts.Close)
	ft := &faultTransport{base: http.DefaultTransport, script: script}
	tt := &trackingTransport{base: ft}
	hc := &http.Client{Transport: tt}
	client := NewLBSClient(ts.URL, hc, opts...)
	t.Cleanup(func() {
		if n := tt.open.Load(); n != 0 {
			t.Errorf("%d of %d response bodies leaked", n, tt.opened.Load())
		}
		hc.CloseIdleConnections()
	})
	return client, ft, tt
}

// TestLBSClientBodyTooLargeIsTerminal proves a 413 maps to the typed
// BodyTooLargeError and is never retried: the cap will reject the same
// payload every time, so retries only burn attempts.
func TestLBSClientBodyTooLargeIsTerminal(t *testing.T) {
	reg := obs.NewRegistry()
	client, ft, _ := faultyLBSClient(t, []faultAction{act413},
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))

	_, err := client.Ingest(context.Background(), []stream.Event{
		{UserID: "u1", X: 1, Y: 1, TS: time.Now()},
	})
	if err == nil {
		t.Fatal("413 produced no error")
	}
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("want ErrBodyTooLarge, got %v", err)
	}
	var btl *BodyTooLargeError
	if !errors.As(err, &btl) {
		t.Fatalf("error is not a *BodyTooLargeError: %v", err)
	}
	if btl.Path != PathIngest {
		t.Errorf("BodyTooLargeError.Path = %q, want %q", btl.Path, PathIngest)
	}
	if !strings.Contains(btl.Message, "1048576") {
		t.Errorf("typed error lost the server's cap message: %q", btl.Message)
	}
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrBudgetDenied) {
		t.Errorf("413 cross-matches another sentinel: %v", err)
	}
	if got := ft.callCount(); got != 1 {
		t.Errorf("413 retried: %d attempts, want 1", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0", got)
	}
	if got := reg.Counter(MetricClientFailures).Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
}

func TestGSPClientRetriesThroughFaultBurst(t *testing.T) {
	reg := obs.NewRegistry()
	client, ft, _ := faultyGSPClient(t, []faultAction{act503, actDrop}, 0,
		WithRetries(2), fastBackoff(), WithClientMetrics(reg))

	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("client did not recover from a 2-failure burst: %v", err)
	}
	if stats.NumPOIs == 0 {
		t.Errorf("recovered stats empty: %+v", stats)
	}
	if got := ft.callCount(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 2 {
		t.Errorf("retry counter = %d, want 2", got)
	}
	if got := reg.Counter(MetricClientAttempts).Value(); got != 3 {
		t.Errorf("attempt counter = %d, want 3", got)
	}
	if got := reg.Counter(MetricClientFailures).Value(); got != 0 {
		t.Errorf("failure counter = %d, want 0", got)
	}
}

func TestGSPClientExhaustsRetries(t *testing.T) {
	reg := obs.NewRegistry()
	script := []faultAction{act503, act503, act503, act503}
	client, ft, _ := faultyGSPClient(t, script, 0,
		WithRetries(2), fastBackoff(), WithClientMetrics(reg))

	_, err := client.Stats(context.Background())
	if err == nil {
		t.Fatal("persistent 503s produced no error")
	}
	if !strings.Contains(err.Error(), "injected overload") {
		t.Errorf("error hides the server message: %v", err)
	}
	if errors.Is(err, ErrBadRequest) {
		t.Errorf("5xx misclassified as bad request: %v", err)
	}
	if got := ft.callCount(); got != 3 {
		t.Errorf("made %d attempts, want 3 (1 + 2 retries)", got)
	}
	if got := reg.Counter(MetricClientFailures).Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
}

func TestGSPClientNeverRetries4xx(t *testing.T) {
	reg := obs.NewRegistry()
	client, ft, _ := faultyGSPClient(t, nil, 0,
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))

	// Radius beyond the server cap: a deterministic 400.
	_, err := client.Freq(context.Background(), geo.Point{}, 1e9)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
	if got := ft.callCount(); got != 1 {
		t.Errorf("4xx retried: %d attempts", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0", got)
	}
}

func TestGSPClientRespectsContextDeadline(t *testing.T) {
	script := []faultAction{actDelay, actDelay, actDelay, actDelay}
	client, ft, _ := faultyGSPClient(t, script, 500*time.Millisecond,
		WithRetries(3), fastBackoff())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Stats(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("deadline-bound request succeeded through a stalled transport")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error does not carry the deadline: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("client kept retrying past the deadline: %v", elapsed)
	}
	if got := ft.callCount(); got != 1 {
		t.Errorf("client retried after the caller's deadline: %d attempts", got)
	}
}

func TestGSPClientPerAttemptTimeoutRetries(t *testing.T) {
	// Each attempt stalls past the per-attempt timeout, but the parent
	// context stays alive, so the client should keep retrying and fail
	// only after exhausting its budget.
	reg := obs.NewRegistry()
	script := []faultAction{actDelay, actDelay, actDelay}
	client, ft, _ := faultyGSPClient(t, script, time.Second,
		WithRetries(1), fastBackoff(), WithRequestTimeout(20*time.Millisecond),
		WithClientMetrics(reg))

	_, err := client.Stats(context.Background())
	if err == nil {
		t.Fatal("stalled transport produced no error")
	}
	if got := ft.callCount(); got != 2 {
		t.Errorf("made %d attempts, want 2 (1 + 1 retry)", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 1 {
		t.Errorf("retry counter = %d, want 1", got)
	}
}

func TestGSPClientConnectionRefusedStopsEarly(t *testing.T) {
	// A dead shard refuses instantly, so burning the full retry budget
	// on it only adds backoff latency while the gateway could already be
	// failing over. Persistent refusal must stop after one retry — not
	// the configured 3 — and surface the typed eviction hint.
	reg := obs.NewRegistry()
	script := []faultAction{actRefused, actRefused, actRefused, actRefused}
	client, ft, _ := faultyGSPClient(t, script, 0,
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))

	_, err := client.Stats(context.Background())
	if err == nil {
		t.Fatal("persistent connection refusal produced no error")
	}
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Errorf("error does not carry the peer-eviction hint: %v", err)
	}
	var pu *PeerUnreachableError
	if !errors.As(err, &pu) {
		t.Fatalf("error is not a *PeerUnreachableError: %v", err)
	}
	if pu.Path != PathStats {
		t.Errorf("PeerUnreachableError.Path = %q, want %q", pu.Path, PathStats)
	}
	if got := ft.callCount(); got != 2 {
		t.Errorf("made %d attempts against a refusing peer, want 2 (1 + 1 retry)", got)
	}
	if got := reg.Counter(MetricClientFailures).Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
}

func TestGSPClientRecoversFromSingleRefusal(t *testing.T) {
	// One refusal (a restarting shard) is still transient: the single
	// permitted retry must carry the request through.
	reg := obs.NewRegistry()
	client, ft, _ := faultyGSPClient(t, []faultAction{actRefused}, 0,
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))

	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("client did not recover from a single refusal: %v", err)
	}
	if stats.NumPOIs == 0 {
		t.Errorf("recovered stats empty: %+v", stats)
	}
	if got := ft.callCount(); got != 2 {
		t.Errorf("made %d attempts, want 2", got)
	}
	if got := reg.Counter(MetricClientFailures).Value(); got != 0 {
		t.Errorf("failure counter = %d, want 0", got)
	}
}

func TestGSPClientDrainsBodiesAcrossMixedOutcomes(t *testing.T) {
	// A success, an injected 503 with a body, a retried recovery, and a
	// 400 — the tracking transport (checked in cleanup) proves every
	// body was closed.
	client, _, tt := faultyGSPClient(t, []faultAction{actOK, act503}, 0,
		WithRetries(1), fastBackoff())
	ctx := context.Background()

	if _, err := client.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stats(ctx); err != nil { // 503 then retried OK
		t.Fatal(err)
	}
	if _, err := client.Freq(ctx, geo.Point{}, -1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
	if opened := tt.opened.Load(); opened != 4 {
		t.Errorf("tracked %d responses, want 4", opened)
	}
}
