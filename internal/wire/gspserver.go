package wire

import (
	"encoding/json"
	"errors"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
)

// GSPServer serves the geo-information provider's query interface over
// HTTP. It is an http.Handler; callers own the http.Server (timeouts,
// TLS, shutdown). Unless instrumentation is disabled it also serves the
// operational endpoints /v1/metrics, /healthz, and /readyz.
type GSPServer struct {
	svc *gsp.Service
	mux *http.ServeMux
	log *log.Logger
	// maxRadius rejects abusive range queries.
	maxRadius float64
	// maxBatch bounds items per batch request.
	maxBatch int
	// maxBody caps POST request bodies in bytes.
	maxBody int64

	reg        *obs.Registry
	instrument bool
	pprof      bool
	handler    http.Handler

	admitCfg AdmissionConfig
	admit    *admission // nil when admission is disabled
	draining atomic.Bool

	authKeys *Keyring
	authOpts []AuthOption
	auth     *authenticator // nil when auth is disabled

	encCap int       // encoded-response cache capacity; <= 0 disables
	enc    *encCache // nil when the encoded cache is disabled
}

var _ http.Handler = (*GSPServer)(nil)

// GSPServerOption customizes a GSPServer. Options are built with the
// With* constructors; ServerOption values (admission control, body
// caps) satisfy this interface too, so the same option value configures
// a GSP or an LBS server.
type GSPServerOption interface {
	applyGSP(*GSPServer)
}

// gspOption adapts a plain function to GSPServerOption.
type gspOption func(*GSPServer)

func (o gspOption) applyGSP(s *GSPServer) { o(s) }

// WithLogger sets the request logger (default: log.Default()).
func WithLogger(l *log.Logger) GSPServerOption {
	return gspOption(func(s *GSPServer) { s.log = l })
}

// WithMaxRadius caps the accepted query radius in meters (default 10 km).
func WithMaxRadius(r float64) GSPServerOption {
	return gspOption(func(s *GSPServer) { s.maxRadius = r })
}

// WithMaxBatch caps the number of items accepted in one batch request
// (default DefaultMaxBatch).
func WithMaxBatch(n int) GSPServerOption {
	return gspOption(func(s *GSPServer) {
		if n > 0 {
			s.maxBatch = n
		}
	})
}

// WithMetrics shares an externally owned metrics registry (default: a
// fresh private one). Daemons pass their process registry so client
// counters and server routes appear in one /v1/metrics document.
func WithMetrics(reg *obs.Registry) GSPServerOption {
	return gspOption(func(s *GSPServer) {
		if reg != nil {
			s.reg = reg
		}
	})
}

// WithInstrumentation toggles the metrics middleware and operational
// endpoints (default on). Disabling it yields the bare handler — used by
// BenchmarkGSPServerParallel to price the middleware.
func WithInstrumentation(on bool) GSPServerOption {
	return gspOption(func(s *GSPServer) { s.instrument = on })
}

// WithPprof serves the net/http/pprof profiling endpoints under
// /debug/pprof/ (default off — the endpoints expose runtime internals,
// so daemons gate them behind an explicit -pprof flag).
func WithPprof(on bool) GSPServerOption {
	return gspOption(func(s *GSPServer) { s.pprof = on })
}

// NewGSPServer wraps a GSP service as an HTTP handler.
func NewGSPServer(svc *gsp.Service, opts ...GSPServerOption) *GSPServer {
	s := &GSPServer{
		svc:        svc,
		mux:        http.NewServeMux(),
		log:        log.Default(),
		maxRadius:  10_000,
		maxBatch:   DefaultMaxBatch,
		maxBody:    DefaultMaxBody,
		reg:        obs.NewRegistry(),
		instrument: true,
		encCap:     DefaultEncodedCache,
	}
	for _, opt := range opts {
		opt.applyGSP(s)
	}
	if s.encCap > 0 {
		s.enc = newEncCache(s.encCap)
		s.enc.export(s.reg)
	}
	s.mux.HandleFunc("GET "+PathStats, s.handleStats)
	s.mux.HandleFunc("GET "+PathQuery, s.handleQuery)
	s.mux.HandleFunc("GET "+PathFreq, s.handleFreq)
	s.registerPOIDump()
	s.registerBatch()
	if s.pprof {
		registerPprof(s.mux)
	}
	var inner http.Handler = s.mux
	if s.admitCfg.Limit > 0 {
		s.admit = newAdmission(s.admitCfg)
		s.admit.export(s.reg)
		// The batch endpoints admit themselves at item weight after
		// decoding; everything else is gated here at weight 1.
		inner = s.admit.middleware(inner, map[string]bool{
			PathFreqBatch:  true,
			PathQueryBatch: true,
		})
	}
	if s.auth = newServerAuth(s.authKeys, s.authOpts); s.auth != nil {
		s.auth.export(s.reg)
		// Auth sits outside admission: a forged request costs one HMAC
		// and is gone — it never occupies an admission slot.
		inner = s.auth.middleware(inner, s.maxBody)
	}
	if s.instrument {
		s.handler = obs.Instrument(s.reg, inner,
			obs.WithRequestHook(s.logRequest),
			obs.WithReadyCheck(s.readyCheck))
	} else {
		s.handler = loggedHandler{mux: inner, hook: s.logRequest}
	}
	return s
}

// Metrics returns the server's metrics registry.
func (s *GSPServer) Metrics() *obs.Registry { return s.reg }

// Drain flips /readyz to 503 so load balancers stop routing new work
// here while in-flight requests finish; the daemons call it on SIGTERM
// before http.Server.Shutdown.
func (s *GSPServer) Drain() { s.draining.Store(true) }

func (s *GSPServer) readyCheck() error {
	if s.draining.Load() {
		return errDraining
	}
	return nil
}

// ServeHTTP implements http.Handler.
func (s *GSPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *GSPServer) logRequest(method, path string, status int, d time.Duration) {
	s.log.Printf("%s %s %d %s", method, path, status, d.Round(time.Microsecond))
}

// errDraining is the readiness error reported after Drain.
var errDraining = errors.New("draining")

// loggedHandler is the uninstrumented fallback: status capture for the
// log line only, no metrics.
type loggedHandler struct {
	mux  http.Handler
	hook func(method, path string, status int, d time.Duration)
}

func (h loggedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	h.mux.ServeHTTP(sw, r)
	h.hook(r.Method, r.URL.Path, sw.status, time.Since(start))
}

// statusWriter records the response status for logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *GSPServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	city := s.svc.City()
	writeJSON(w, http.StatusOK, StatsResponse{
		Name:     city.Name,
		Bounds:   city.Bounds,
		NumPOIs:  city.NumPOIs(),
		NumTypes: city.M(),
		Types:    city.Types.Names(),
	})
}

// parseLocation extracts and validates the x, y, r query parameters.
func (s *GSPServer) parseLocation(w http.ResponseWriter, r *http.Request) (geo.Point, float64, bool) {
	return parseLocationQuery(w, r, s.maxRadius)
}

// parseLocationQuery is the shared location validator behind the single
// query endpoints: the GSP server and the cluster gateway both run it,
// so a rejected request gets a byte-identical 400 from either — the
// differential cluster e2e depends on that. Coordinates must be finite —
// strconv accepts "NaN" and "Inf", which would otherwise flow into the
// spatial index as poison values.
func parseLocationQuery(w http.ResponseWriter, r *http.Request, maxRadius float64) (geo.Point, float64, bool) {
	q := r.URL.Query()
	x, errX := strconv.ParseFloat(q.Get("x"), 64)
	y, errY := strconv.ParseFloat(q.Get("y"), 64)
	radius, errR := strconv.ParseFloat(q.Get("r"), 64)
	if errX != nil || errY != nil || errR != nil {
		writeError(w, http.StatusBadRequest, "x, y, r must be numeric")
		return geo.Point{}, 0, false
	}
	if !isFinite(x) || !isFinite(y) || !isFinite(radius) {
		writeError(w, http.StatusBadRequest, "x, y, r must be finite")
		return geo.Point{}, 0, false
	}
	if radius <= 0 || radius > maxRadius {
		writeError(w, http.StatusBadRequest, "r out of range")
		return geo.Point{}, 0, false
	}
	return geo.Point{X: x, Y: y}, radius, true
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// isMaxBytes reports whether err came from an http.MaxBytesReader body
// cap — the rejection that must surface as 413, not 400.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

func (s *GSPServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	l, radius, ok := s.parseLocation(w, r)
	if !ok {
		return
	}
	pois := s.svc.Query(l, radius)
	writeJSON(w, http.StatusOK, QueryResponse{POIs: pois})
}

func (s *GSPServer) handleFreq(w http.ResponseWriter, r *http.Request) {
	l, radius, ok := s.parseLocation(w, r)
	if !ok {
		return
	}
	if s.enc != nil {
		k := encKey{kind: encFreq, x: l.X, y: l.Y, r: radius}
		if body, ok := s.enc.get(k); ok {
			writeRaw(w, http.StatusOK, body)
			return
		}
		if body, err := encodeJSON(FreqResponse{Freq: s.svc.Freq(l, radius)}); err == nil {
			s.enc.put(k, body)
			writeRaw(w, http.StatusOK, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, FreqResponse{Freq: s.svc.Freq(l, radius)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than note it.
		log.Printf("wire: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
