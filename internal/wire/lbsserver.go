package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"poiagg/internal/attack"
	"poiagg/internal/budget"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
	"poiagg/internal/poi"
)

// Auditor examines an incoming release. The LBS application is exactly
// the adversary of the threat model — it holds the user identity, the
// query range, and the public GSP — so an auditor wired to the attacks
// shows a service operator how identifying each accepted release is.
type Auditor interface {
	// Audit returns whether the release uniquely re-identifies its
	// location and the surviving candidate count.
	Audit(f poi.FreqVector, r float64) (reIdentified bool, candidates int)
}

// RegionAuditor audits with the region re-identification attack.
type RegionAuditor struct {
	Svc *gsp.Service
}

var _ Auditor = RegionAuditor{}

// Audit implements Auditor.
func (a RegionAuditor) Audit(f poi.FreqVector, r float64) (bool, int) {
	res := attack.Region(a.Svc, f, r)
	return res.Success, len(res.Candidates)
}

// LBSServer is the POI-based application service: it accepts frequency
// vector releases, stores a bounded per-user history, and optionally
// audits each release for re-identifiability. Like GSPServer it serves
// /v1/metrics, /healthz, and /readyz.
type LBSServer struct {
	mux     *http.ServeMux
	auditor Auditor // nil disables auditing
	m       int     // expected vector dimension
	maxR    float64 // reject implausible query ranges

	reg     *obs.Registry
	log     *log.Logger // nil disables per-request logging
	pprof   bool
	handler http.Handler

	// ledger, when set, charges (releaseEps, releaseDelta) per accepted
	// release and serves the /v1/budget admin endpoints.
	ledger       *budget.Ledger
	releaseEps   float64
	releaseDelta float64

	mu       sync.Mutex
	history  map[string][]ReleaseRequest
	maxPerID int
}

var _ http.Handler = (*LBSServer)(nil)

// LBSServerOption customizes an LBSServer.
type LBSServerOption func(*LBSServer)

// WithAuditor enables release auditing.
func WithAuditor(a Auditor) LBSServerOption {
	return func(s *LBSServer) { s.auditor = a }
}

// WithHistoryLimit caps stored releases per user (default 1000).
func WithHistoryLimit(n int) LBSServerOption {
	return func(s *LBSServer) { s.maxPerID = n }
}

// WithLBSMaxRadius caps the accepted release query range in meters
// (default 10 km, matching the GSP's cap).
func WithLBSMaxRadius(r float64) LBSServerOption {
	return func(s *LBSServer) { s.maxR = r }
}

// WithLBSMetrics shares an externally owned metrics registry (default: a
// fresh private one).
func WithLBSMetrics(reg *obs.Registry) LBSServerOption {
	return func(s *LBSServer) {
		if reg != nil {
			s.reg = reg
		}
	}
}

// WithLBSLogger enables per-request logging (default: off, preserving
// the server's historically quiet behavior; lbsd turns it on).
func WithLBSLogger(l *log.Logger) LBSServerOption {
	return func(s *LBSServer) { s.log = l }
}

// WithLBSPprof serves the net/http/pprof profiling endpoints under
// /debug/pprof/ (default off; lbsd gates it behind -pprof).
func WithLBSPprof(on bool) LBSServerOption {
	return func(s *LBSServer) { s.pprof = on }
}

// WithBudget enforces a server-side privacy budget: every accepted
// POST /v1/release charges (eps, delta) — the per-release cost of the
// DP mechanism the deployment runs, e.g. Theorem 4's (ε, δ) — against
// the ledger, identified by the X-Principal header, ?principal= query
// parameter, or the release's userId, in that order. Exhausted
// principals get 429 with a BudgetErrorResponse body, and the
// /v1/budget/{principal} admin endpoints come alive. Ignored when led
// is nil or eps is not positive. The server does not own the ledger;
// the daemon closes a persistent one on shutdown.
func WithBudget(led *budget.Ledger, eps, delta float64) LBSServerOption {
	return func(s *LBSServer) {
		if led == nil || eps <= 0 || delta < 0 {
			return
		}
		s.ledger = led
		s.releaseEps = eps
		s.releaseDelta = delta
	}
}

// NewLBSServer returns an LBS application server expecting frequency
// vectors of dimension m (the city's type count).
func NewLBSServer(m int, opts ...LBSServerOption) *LBSServer {
	s := &LBSServer{
		mux:      http.NewServeMux(),
		m:        m,
		maxR:     10_000,
		reg:      obs.NewRegistry(),
		history:  make(map[string][]ReleaseRequest),
		maxPerID: 1000,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST "+PathRelease, s.handleRelease)
	s.mux.HandleFunc("GET "+PathReleases, s.handleReleases)
	if s.ledger != nil {
		s.mux.HandleFunc("GET "+PathBudget+"/{principal}", s.handleBudgetStatus)
		s.mux.HandleFunc("POST "+PathBudget+"/{principal}/reset", s.handleBudgetReset)
	}
	if s.pprof {
		registerPprof(s.mux)
	}
	obsOpts := []obs.Option{}
	if s.log != nil {
		obsOpts = append(obsOpts, obs.WithRequestHook(func(method, path string, status int, d time.Duration) {
			s.log.Printf("%s %s %d %s", method, path, status, d.Round(time.Microsecond))
		}))
	}
	s.handler = obs.Instrument(s.reg, s.mux, obsOpts...)
	return s
}

// Metrics returns the server's metrics registry.
func (s *LBSServer) Metrics() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *LBSServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *LBSServer) handleRelease(w http.ResponseWriter, r *http.Request) {
	var rel ReleaseRequest
	body := io.LimitReader(r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&rel); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body")
		return
	}
	switch {
	case rel.UserID == "":
		writeError(w, http.StatusBadRequest, "missing userId")
		return
	case len(rel.Freq) != s.m:
		writeError(w, http.StatusBadRequest, "freq has wrong dimension")
		return
	case !isFinite(rel.R) || rel.R <= 0 || rel.R > s.maxR:
		// NaN fails every comparison, so test it explicitly — a NaN
		// radius would otherwise sail through <= 0.
		writeError(w, http.StatusBadRequest, "r out of range")
		return
	}
	for _, n := range rel.Freq {
		if n < 0 {
			writeError(w, http.StatusBadRequest, "negative frequency")
			return
		}
	}
	if rel.Time.IsZero() {
		rel.Time = time.Now().UTC()
	}

	// Charge the privacy budget before any effect (history, audit): a
	// denied release must leave no trace and cost no audit work.
	var budgetState *BudgetState
	if s.ledger != nil {
		dec, err := s.ledger.Spend(principalOf(r, rel), s.releaseEps, s.releaseDelta)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		budgetState = budgetStateOf(dec)
		if !dec.Allowed {
			if dec.RetryAfter > 0 {
				w.Header().Set("Retry-After",
					strconv.Itoa(int(math.Ceil(dec.RetryAfter.Seconds()))))
			}
			writeJSON(w, http.StatusTooManyRequests, BudgetErrorResponse{
				Error:  fmt.Sprintf("privacy budget denied (%s)", dec.Denial),
				Budget: budgetState,
			})
			return
		}
	}

	s.mu.Lock()
	h := append(s.history[rel.UserID], rel)
	if len(h) > s.maxPerID {
		h = h[len(h)-s.maxPerID:]
	}
	s.history[rel.UserID] = h
	s.mu.Unlock()

	resp := ReleaseResponse{Accepted: true, Budget: budgetState}
	if s.auditor != nil {
		resp.Audited = true
		resp.ReIdentified, resp.CandidateCount = s.auditor.Audit(rel.Freq, rel.R)
	}
	writeJSON(w, http.StatusOK, resp)
}

// principalOf resolves the budget principal for a release: X-Principal
// header, ?principal= query parameter, or the release's userId.
func principalOf(r *http.Request, rel ReleaseRequest) string {
	if p := r.Header.Get(HeaderPrincipal); p != "" {
		return p
	}
	if p := r.URL.Query().Get("principal"); p != "" {
		return p
	}
	return rel.UserID
}

// budgetStateOf converts a ledger decision to its wire representation.
func budgetStateOf(dec budget.Decision) *BudgetState {
	st := &BudgetState{
		Principal:            dec.Principal,
		SpentEps:             dec.SpentEps,
		SpentDelta:           dec.SpentDelta,
		RemainingEps:         dec.RemainingEps,
		RemainingDelta:       dec.RemainingDelta,
		WindowRemainingEps:   dec.WindowRemainingEps,
		WindowRemainingDelta: dec.WindowRemainingDelta,
		Releases:             dec.Releases,
	}
	if !dec.Allowed {
		st.Denial = string(dec.Denial)
		st.RetryAfterSeconds = dec.RetryAfter.Seconds()
	}
	return st
}

func (s *LBSServer) handleBudgetStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, budgetStateOf(s.ledger.Status(r.PathValue("principal"))))
}

func (s *LBSServer) handleBudgetReset(w http.ResponseWriter, r *http.Request) {
	principal := r.PathValue("principal")
	s.ledger.Reset(principal)
	writeJSON(w, http.StatusOK, budgetStateOf(s.ledger.Status(principal)))
}

func (s *LBSServer) handleReleases(w http.ResponseWriter, r *http.Request) {
	userID := r.URL.Query().Get("user")
	if userID == "" {
		writeError(w, http.StatusBadRequest, "missing user parameter")
		return
	}
	s.mu.Lock()
	stored := s.history[userID]
	out := make([]ReleaseRequest, len(stored))
	copy(out, stored)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ReleasesResponse{UserID: userID, Releases: out})
}
