package wire

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"poiagg/internal/attack"
	"poiagg/internal/budget"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
	"poiagg/internal/poi"
	"poiagg/internal/stream"
)

// Auditor examines an incoming release. The LBS application is exactly
// the adversary of the threat model — it holds the user identity, the
// query range, and the public GSP — so an auditor wired to the attacks
// shows a service operator how identifying each accepted release is.
type Auditor interface {
	// Audit returns whether the release uniquely re-identifies its
	// location and the surviving candidate count.
	Audit(f poi.FreqVector, r float64) (reIdentified bool, candidates int)
}

// RegionAuditor audits with the region re-identification attack.
type RegionAuditor struct {
	Svc *gsp.Service
}

var _ Auditor = RegionAuditor{}

// Audit implements Auditor.
func (a RegionAuditor) Audit(f poi.FreqVector, r float64) (bool, int) {
	res := attack.Region(a.Svc, f, r)
	return res.Success, len(res.Candidates)
}

// LBSServer is the POI-based application service: it accepts frequency
// vector releases, stores a bounded per-user history, and optionally
// audits each release for re-identifiability. Like GSPServer it serves
// /v1/metrics, /healthz, and /readyz.
type LBSServer struct {
	mux     *http.ServeMux
	auditor Auditor // nil disables auditing
	m       int     // expected vector dimension
	maxR    float64 // reject implausible query ranges
	maxBody int64   // POST body cap in bytes

	reg     *obs.Registry
	log     *log.Logger // nil disables per-request logging
	pprof   bool
	handler http.Handler

	admitCfg AdmissionConfig
	admit    *admission // nil when admission is disabled
	draining atomic.Bool

	authKeys *Keyring
	authOpts []AuthOption
	auth     *authenticator // nil when auth is disabled

	// ledger, when set, charges (releaseEps, releaseDelta) per accepted
	// release and serves the /v1/budget admin endpoints.
	ledger       *budget.Ledger
	releaseEps   float64
	releaseDelta float64

	// streamStore/streamRel, when set, serve the live-ingestion surface:
	// POST /v1/ingest and GET /v1/stream/releases.
	streamStore *stream.Store
	streamRel   *stream.Releaser

	mu       sync.Mutex
	history  map[string]*userHistory
	userQ    []string // second-chance queue over user IDs, front = oldest
	maxPerID int
	maxUsers int
}

// userHistory is one user's stored releases plus its second-chance bit.
type userHistory struct {
	rels    []ReleaseRequest
	touched bool
}

// MetricLBSHistoryUsers gauges the number of distinct users with stored
// history; bounded by WithHistoryUsers.
const MetricLBSHistoryUsers = "lbs.history_users"

// DefaultHistoryUsers caps distinct users with stored history unless
// WithHistoryUsers overrides it.
const DefaultHistoryUsers = 10_000

var _ http.Handler = (*LBSServer)(nil)

// LBSServerOption customizes an LBSServer. ServerOption values
// (admission control, body caps) satisfy this interface too.
type LBSServerOption interface {
	applyLBS(*LBSServer)
}

// lbsOption adapts a plain function to LBSServerOption.
type lbsOption func(*LBSServer)

func (o lbsOption) applyLBS(s *LBSServer) { o(s) }

// WithAuditor enables release auditing.
func WithAuditor(a Auditor) LBSServerOption {
	return lbsOption(func(s *LBSServer) { s.auditor = a })
}

// WithHistoryLimit caps stored releases per user (default 1000).
func WithHistoryLimit(n int) LBSServerOption {
	return lbsOption(func(s *LBSServer) { s.maxPerID = n })
}

// WithHistoryUsers caps the number of distinct users with stored
// history (default DefaultHistoryUsers). Past the cap, the least
// recently active user is evicted second-chance style — a flood of
// unique userIds can no longer grow the history map without bound,
// while users that keep releasing (or being read) survive.
func WithHistoryUsers(n int) LBSServerOption {
	return lbsOption(func(s *LBSServer) {
		if n > 0 {
			s.maxUsers = n
		}
	})
}

// WithLBSMaxRadius caps the accepted release query range in meters
// (default 10 km, matching the GSP's cap).
func WithLBSMaxRadius(r float64) LBSServerOption {
	return lbsOption(func(s *LBSServer) { s.maxR = r })
}

// WithLBSMetrics shares an externally owned metrics registry (default: a
// fresh private one).
func WithLBSMetrics(reg *obs.Registry) LBSServerOption {
	return lbsOption(func(s *LBSServer) {
		if reg != nil {
			s.reg = reg
		}
	})
}

// WithLBSLogger enables per-request logging (default: off, preserving
// the server's historically quiet behavior; lbsd turns it on).
func WithLBSLogger(l *log.Logger) LBSServerOption {
	return lbsOption(func(s *LBSServer) { s.log = l })
}

// WithLBSPprof serves the net/http/pprof profiling endpoints under
// /debug/pprof/ (default off; lbsd gates it behind -pprof).
func WithLBSPprof(on bool) LBSServerOption {
	return lbsOption(func(s *LBSServer) { s.pprof = on })
}

// Drain flips /readyz to 503 so load balancers stop routing new work
// here while in-flight requests finish; lbsd calls it on SIGTERM before
// http.Server.Shutdown.
func (s *LBSServer) Drain() { s.draining.Store(true) }

func (s *LBSServer) readyCheck() error {
	if s.draining.Load() {
		return errDraining
	}
	return nil
}

// WithBudget enforces a server-side privacy budget: every accepted
// POST /v1/release charges (eps, delta) — the per-release cost of the
// DP mechanism the deployment runs, e.g. Theorem 4's (ε, δ) — against
// the ledger, identified by the X-Principal header, ?principal= query
// parameter, or the release's userId, in that order. Exhausted
// principals get 429 with a BudgetErrorResponse body, and the
// /v1/budget/{principal} admin endpoints come alive. Ignored when led
// is nil or eps is not positive. The server does not own the ledger;
// the daemon closes a persistent one on shutdown.
func WithBudget(led *budget.Ledger, eps, delta float64) LBSServerOption {
	return lbsOption(func(s *LBSServer) {
		if led == nil || eps <= 0 || delta < 0 {
			return
		}
		s.ledger = led
		s.releaseEps = eps
		s.releaseDelta = delta
	})
}

// NewLBSServer returns an LBS application server expecting frequency
// vectors of dimension m (the city's type count).
func NewLBSServer(m int, opts ...LBSServerOption) *LBSServer {
	s := &LBSServer{
		mux:      http.NewServeMux(),
		m:        m,
		maxR:     10_000,
		maxBody:  DefaultMaxBody,
		reg:      obs.NewRegistry(),
		history:  make(map[string]*userHistory),
		maxPerID: 1000,
		maxUsers: DefaultHistoryUsers,
	}
	for _, opt := range opts {
		opt.applyLBS(s)
	}
	s.mux.HandleFunc("POST "+PathRelease, s.handleRelease)
	s.mux.HandleFunc("GET "+PathReleases, s.handleReleases)
	if s.ledger != nil {
		s.mux.HandleFunc("GET "+PathBudget+"/{principal}", s.handleBudgetStatus)
		s.mux.HandleFunc("POST "+PathBudget+"/{principal}/reset", s.handleBudgetReset)
	}
	if s.streamStore != nil {
		s.mux.HandleFunc("POST "+PathIngest, s.handleIngest)
		s.streamStore.ExportMetrics(s.reg)
	}
	if s.streamRel != nil {
		s.mux.HandleFunc("GET "+PathStreamReleases, s.handleStreamReleases)
		s.streamRel.ExportMetrics(s.reg)
	}
	if s.pprof {
		registerPprof(s.mux)
	}
	s.reg.CounterFunc(MetricLBSHistoryUsers, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(len(s.history))
	})
	var inner http.Handler = s.mux
	if s.admitCfg.Limit > 0 {
		s.admit = newAdmission(s.admitCfg)
		s.admit.export(s.reg)
		inner = s.admit.middleware(inner, nil)
	}
	if s.auth = newServerAuth(s.authKeys, s.authOpts); s.auth != nil {
		s.auth.export(s.reg)
		// Auth sits outside admission: a forged request costs one HMAC
		// and is gone — it never occupies an admission slot, and a
		// rejected release never reaches the budget ledger.
		inner = s.auth.middleware(inner, s.maxBody)
	}
	obsOpts := []obs.Option{obs.WithReadyCheck(s.readyCheck)}
	if s.log != nil {
		obsOpts = append(obsOpts, obs.WithRequestHook(func(method, path string, status int, d time.Duration) {
			s.log.Printf("%s %s %d %s", method, path, status, d.Round(time.Microsecond))
		}))
	}
	s.handler = obs.Instrument(s.reg, inner, obsOpts...)
	return s
}

// Metrics returns the server's metrics registry.
func (s *LBSServer) Metrics() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *LBSServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *LBSServer) handleRelease(w http.ResponseWriter, r *http.Request) {
	var rel ReleaseRequest
	// MaxBytesReader (not a silent LimitReader truncation) so an
	// attacker-sized payload is rejected with an explicit 413 and the
	// connection torn down instead of decoding a clipped prefix.
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&rel); err != nil {
		if isMaxBytes(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.maxBody))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body")
		return
	}
	switch {
	case rel.UserID == "":
		writeError(w, http.StatusBadRequest, "missing userId")
		return
	case len(rel.Freq) != s.m:
		writeError(w, http.StatusBadRequest, "freq has wrong dimension")
		return
	case !isFinite(rel.R) || rel.R <= 0 || rel.R > s.maxR:
		// NaN fails every comparison, so test it explicitly — a NaN
		// radius would otherwise sail through <= 0.
		writeError(w, http.StatusBadRequest, "r out of range")
		return
	}
	for _, n := range rel.Freq {
		if n < 0 {
			writeError(w, http.StatusBadRequest, "negative frequency")
			return
		}
	}
	if rel.Time.IsZero() {
		rel.Time = time.Now().UTC()
	}

	// Charge the privacy budget before any effect (history, audit): a
	// denied release must leave no trace and cost no audit work.
	var budgetState *BudgetState
	if s.ledger != nil {
		dec, err := s.ledger.Spend(s.principalFromRequest(r, rel), s.releaseEps, s.releaseDelta)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		budgetState = budgetStateOf(dec)
		if !dec.Allowed {
			if dec.RetryAfter > 0 {
				w.Header().Set("Retry-After",
					strconv.Itoa(int(math.Ceil(dec.RetryAfter.Seconds()))))
			}
			writeJSON(w, http.StatusTooManyRequests, BudgetErrorResponse{
				Error:  fmt.Sprintf("privacy budget denied (%s)", dec.Denial),
				Budget: budgetState,
			})
			return
		}
	}

	s.storeRelease(rel)

	resp := ReleaseResponse{Accepted: true, Budget: budgetState}
	if s.auditor != nil {
		resp.Audited = true
		resp.ReIdentified, resp.CandidateCount = s.auditor.Audit(rel.Freq, rel.R)
	}
	writeJSON(w, http.StatusOK, resp)
}

// storeRelease appends rel to its user's history, bounding both the
// per-user entry count (maxPerID) and the total distinct users
// (maxUsers, second-chance eviction — same one-bit LRU approximation as
// the GSP freq cache, so steadily active users survive a flood of
// one-shot userIds).
func (s *LBSServer) storeRelease(rel ReleaseRequest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	uh := s.history[rel.UserID]
	if uh == nil {
		for len(s.history) >= s.maxUsers && len(s.userQ) > 0 {
			oldest := s.userQ[0]
			s.userQ = s.userQ[1:]
			old := s.history[oldest]
			if old == nil {
				continue
			}
			if old.touched {
				old.touched = false
				s.userQ = append(s.userQ, oldest)
				continue
			}
			delete(s.history, oldest)
		}
		uh = &userHistory{}
		s.history[rel.UserID] = uh
		s.userQ = append(s.userQ, rel.UserID)
	}
	uh.touched = true
	uh.rels = append(uh.rels, rel)
	if len(uh.rels) > s.maxPerID {
		uh.rels = uh.rels[len(uh.rels)-s.maxPerID:]
	}
}

// principalFromRequest resolves the budget principal for a release.
// With auth enabled, the signature-verified identity is the ONLY one
// consulted — the client-asserted X-Principal header and ?principal=
// query parameter are ignored, closing the hole where any client could
// charge (or, via the admin reset, refill) another tenant's budget.
// Without auth the historical fallback chain applies: X-Principal
// header, ?principal= query parameter, then the release's userId.
func (s *LBSServer) principalFromRequest(r *http.Request, rel ReleaseRequest) string {
	if s.auth != nil {
		// The auth middleware rejected anything unsigned before it could
		// reach this handler, so the verified principal is always here;
		// the empty fallback fails closed if that invariant ever breaks.
		p, _ := VerifiedPrincipal(r.Context())
		return p
	}
	if p := r.Header.Get(HeaderPrincipal); p != "" {
		return p
	}
	if p := r.URL.Query().Get("principal"); p != "" {
		return p
	}
	return rel.UserID
}

// budgetStateOf converts a ledger decision to its wire representation.
func budgetStateOf(dec budget.Decision) *BudgetState {
	st := &BudgetState{
		Principal:            dec.Principal,
		SpentEps:             dec.SpentEps,
		SpentDelta:           dec.SpentDelta,
		RemainingEps:         dec.RemainingEps,
		RemainingDelta:       dec.RemainingDelta,
		WindowRemainingEps:   dec.WindowRemainingEps,
		WindowRemainingDelta: dec.WindowRemainingDelta,
		Releases:             dec.Releases,
	}
	if !dec.Allowed {
		st.Denial = string(dec.Denial)
		st.RetryAfterSeconds = dec.RetryAfter.Seconds()
	}
	return st
}

// authorizeBudgetPrincipal gates the budget admin endpoints: with auth
// on, authentication alone is not authorization — the path's {principal}
// must equal the signature-verified identity, or any key-holding tenant
// could sign POST /v1/budget/<victim>/reset (the signature covers the
// path, so it verifies) and refill or inspect another tenant's (ε, δ)
// accounting. Cross-tenant requests get 403 with a structured
// principal_mismatch reason. Operators are not locked out: they
// provision the keyring, so they hold (and can sign as) every tenant.
// Without auth the endpoints stay open, as before.
func (s *LBSServer) authorizeBudgetPrincipal(w http.ResponseWriter, r *http.Request) (string, bool) {
	principal := r.PathValue("principal")
	if s.auth == nil {
		return principal, true
	}
	verified, ok := VerifiedPrincipal(r.Context())
	if !ok || verified != principal {
		writeAuthForbidden(w, fmt.Sprintf(
			"principal %q may not act on %q's budget", verified, principal))
		return "", false
	}
	return principal, true
}

func (s *LBSServer) handleBudgetStatus(w http.ResponseWriter, r *http.Request) {
	principal, ok := s.authorizeBudgetPrincipal(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, budgetStateOf(s.ledger.Status(principal)))
}

func (s *LBSServer) handleBudgetReset(w http.ResponseWriter, r *http.Request) {
	principal, ok := s.authorizeBudgetPrincipal(w, r)
	if !ok {
		return
	}
	s.ledger.Reset(principal)
	writeJSON(w, http.StatusOK, budgetStateOf(s.ledger.Status(principal)))
}

func (s *LBSServer) handleReleases(w http.ResponseWriter, r *http.Request) {
	userID := r.URL.Query().Get("user")
	if userID == "" {
		writeError(w, http.StatusBadRequest, "missing user parameter")
		return
	}
	s.mu.Lock()
	var out []ReleaseRequest
	if uh := s.history[userID]; uh != nil {
		// A read is activity too: mark the user so eviction spares it.
		uh.touched = true
		out = make([]ReleaseRequest, len(uh.rels))
		copy(out, uh.rels)
	} else {
		out = []ReleaseRequest{}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ReleasesResponse{UserID: userID, Releases: out})
}
