package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// getStatusAndBody performs a raw request and returns status plus body.
func getStatusAndBody(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// assertJSONError decodes b as the error envelope and requires a
// non-empty message — every rejection must be machine-readable JSON.
func assertJSONError(t *testing.T, name string, b []byte) {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(b, &e); err != nil {
		t.Errorf("%s: error body is not valid JSON: %q", name, b)
		return
	}
	if e.Error == "" {
		t.Errorf("%s: error body has empty message: %q", name, b)
	}
}

// TestGSPServerRejectsMalformedLocations drives every malformed-location
// class through the real HTTP surface: non-numeric, NaN/Inf poison
// values, and out-of-range radii must all yield 400 with a JSON error.
func TestGSPServerRejectsMalformedLocations(t *testing.T) {
	ts, _ := newGSPTestServer(t, WithMaxRadius(2000))
	cases := []struct {
		name  string
		query string
	}{
		{"nan x", "x=NaN&y=0&r=100"},
		{"nan y", "x=0&y=nan&r=100"},
		{"nan r", "x=0&y=0&r=NaN"},
		{"pos inf x", "x=Inf&y=0&r=100"},
		{"neg inf y", "x=0&y=-Inf&r=100"},
		{"inf r", "x=0&y=0&r=+Inf"},
		{"zero r", "x=0&y=0&r=0"},
		{"negative r", "x=0&y=0&r=-5"},
		{"r above cap", "x=0&y=0&r=5000"},
		{"non-numeric x", "x=abc&y=0&r=100"},
		{"missing y", "x=0&r=100"},
		{"empty query", ""},
	}
	for _, path := range []string{PathQuery, PathFreq} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%s", strings.TrimPrefix(path, "/v1/"), tc.name), func(t *testing.T) {
				status, body := getStatusAndBody(t, http.MethodGet, ts.URL+path+"?"+tc.query, "")
				if status != http.StatusBadRequest {
					t.Errorf("status = %d, want 400 (body %q)", status, body)
				}
				assertJSONError(t, tc.name, body)
			})
		}
	}
}

// TestLBSServerRejectsMalformedReleases covers the release decoder:
// malformed JSON, wrong freq-vector length, bad radii, and negative
// frequencies — exact status codes, JSON error bodies.
func TestLBSServerRejectsMalformedReleases(t *testing.T) {
	city, _ := wireFixture(t)
	ts, _ := newLBSTestServer(t)
	m := city.M()
	goodFreq := func() string {
		parts := make([]string, m)
		for i := range parts {
			parts[i] = "1"
		}
		return "[" + strings.Join(parts, ",") + "]"
	}()

	cases := []struct {
		name       string
		body       string
		wantStatus int
	}{
		{"malformed json", "{", http.StatusBadRequest},
		{"empty body", "", http.StatusBadRequest},
		{"json array", "[1,2,3]", http.StatusBadRequest},
		{"missing user", fmt.Sprintf(`{"freq":%s,"r":900}`, goodFreq), http.StatusBadRequest},
		{"short freq", `{"userId":"u","freq":[1,2,3],"r":900}`, http.StatusBadRequest},
		{"long freq", fmt.Sprintf(`{"userId":"u","freq":%s,"r":900}`,
			"["+strings.Repeat("1,", m)+"1]"), http.StatusBadRequest},
		{"null freq", `{"userId":"u","freq":null,"r":900}`, http.StatusBadRequest},
		{"zero r", fmt.Sprintf(`{"userId":"u","freq":%s,"r":0}`, goodFreq), http.StatusBadRequest},
		{"negative r", fmt.Sprintf(`{"userId":"u","freq":%s,"r":-10}`, goodFreq), http.StatusBadRequest},
		{"huge r", fmt.Sprintf(`{"userId":"u","freq":%s,"r":1e9}`, goodFreq), http.StatusBadRequest},
		{"negative freq entry", fmt.Sprintf(`{"userId":"u","freq":[-1%s,"r":900}`,
			strings.Repeat(",1", m-1)+"]"), http.StatusBadRequest},
		{"fractional freq entry", fmt.Sprintf(`{"userId":"u","freq":[1.5%s,"r":900}`,
			strings.Repeat(",1", m-1)+"]"), http.StatusBadRequest},
		{"valid release", fmt.Sprintf(`{"userId":"u","freq":%s,"r":900}`, goodFreq), http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := getStatusAndBody(t, http.MethodPost, ts.URL+PathRelease, tc.body)
			if status != tc.wantStatus {
				t.Errorf("status = %d, want %d (body %q)", status, tc.wantStatus, body)
			}
			if tc.wantStatus != http.StatusOK {
				assertJSONError(t, tc.name, body)
			}
		})
	}

	// History endpoint without a user parameter.
	status, body := getStatusAndBody(t, http.MethodGet, ts.URL+PathReleases, "")
	if status != http.StatusBadRequest {
		t.Errorf("missing user = %d, want 400", status)
	}
	assertJSONError(t, "missing user", body)

	// Wrong methods fall through to the mux's 405.
	if status, _ := getStatusAndBody(t, http.MethodGet, ts.URL+PathRelease, ""); status != http.StatusMethodNotAllowed {
		t.Errorf("GET release = %d, want 405", status)
	}
	if status, _ := getStatusAndBody(t, http.MethodDelete, ts.URL+PathReleases+"?user=u", ""); status != http.StatusMethodNotAllowed {
		t.Errorf("DELETE releases = %d, want 405", status)
	}
}

// TestServersRejectOversizedReleaseBody proves the 1 MiB release body
// cap holds: a massive but syntactically valid body yields 413 with a
// structured error instead of being decoded.
func TestServersRejectOversizedReleaseBody(t *testing.T) {
	ts, _ := newLBSTestServer(t)
	huge := `{"userId":"u","freq":[` + strings.Repeat("1,", 1<<20) + `1],"r":900}`
	status, body := getStatusAndBody(t, http.MethodPost, ts.URL+PathRelease, huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", status)
	}
	assertJSONError(t, "oversized release", body)
}

// TestServersRejectOversizedBatchBody proves both batch endpoints apply
// the same body cap as the release path.
func TestServersRejectOversizedBatchBody(t *testing.T) {
	ts, _ := newGSPTestServer(t)
	huge := `{"items":[` + strings.Repeat(`{"x":1,"y":1,"r":500},`, 60_000) +
		`{"x":1,"y":1,"r":500}]}`
	if len(huge) <= 1<<20 {
		t.Fatalf("test body too small to exceed the default cap: %d bytes", len(huge))
	}
	for _, path := range []string{PathFreqBatch, PathQueryBatch} {
		status, body := getStatusAndBody(t, http.MethodPost, ts.URL+path, huge)
		if status != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body = %d, want 413", path, status)
		}
		assertJSONError(t, path, body)
	}
}

// TestWithMaxBodyConfiguresCap pins the configurable cap: one byte over
// a tiny limit is 413, at the limit the request decodes normally.
func TestWithMaxBodyConfiguresCap(t *testing.T) {
	city, svc := wireFixture(t)
	ts, _ := newLBSTestServer(t, WithMaxBody(512))
	l := city.RandomLocations(1, 91)[0]
	rel := ReleaseRequest{UserID: "u", Freq: svc.Freq(l, 900), R: 900}
	small, err := json.Marshal(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) > 512 {
		t.Skipf("fixture release encodes to %d bytes, cannot fit the 512-byte cap", len(small))
	}
	status, _ := getStatusAndBody(t, http.MethodPost, ts.URL+PathRelease, string(small))
	if status != http.StatusOK {
		t.Errorf("within-cap release = %d, want 200", status)
	}
	over := `{"userId":"` + strings.Repeat("u", 600) + `"}`
	status, body := getStatusAndBody(t, http.MethodPost, ts.URL+PathRelease, over)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap release = %d, want 413", status)
	}
	assertJSONError(t, "over-cap release", body)
}

// TestBatchEndpointsRejectBadEnvelopes drives the envelope-level
// rejection classes through both batch endpoints: malformed JSON, an
// empty batch, and a batch above the configured cap must all yield 400
// with a JSON error — nothing is partially executed.
func TestBatchEndpointsRejectBadEnvelopes(t *testing.T) {
	ts, _ := newGSPTestServer(t, WithMaxBatch(4))
	item := `{"x":100,"y":100,"r":500}`
	oversized := `{"items":[` + strings.Repeat(item+",", 4) + item + `]}` // 5 > cap 4

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"items":[`},
		{"empty body", ``},
		{"json array", `[1,2,3]`},
		{"missing items", `{}`},
		{"null items", `{"items":null}`},
		{"empty items", `{"items":[]}`},
		{"oversized batch", oversized},
	}
	for _, path := range []string{PathFreqBatch, PathQueryBatch} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%s", strings.TrimPrefix(path, "/v1/"), tc.name), func(t *testing.T) {
				status, body := getStatusAndBody(t, http.MethodPost, ts.URL+path, tc.body)
				if status != http.StatusBadRequest {
					t.Errorf("status = %d, want 400 (body %q)", status, body)
				}
				assertJSONError(t, tc.name, body)
			})
		}
	}

	// Wrong method falls through to the mux's 405.
	if status, _ := getStatusAndBody(t, http.MethodGet, ts.URL+PathFreqBatch, ""); status != http.StatusMethodNotAllowed {
		t.Errorf("GET freq/batch = %d, want 405", status)
	}
}

// TestBatchEndpointsReportPerItemErrors pins the per-item error
// contract: one malformed item inside an otherwise valid batch yields
// whole-batch 200 with the error isolated at that item's index and
// every other item answered normally.
func TestBatchEndpointsReportPerItemErrors(t *testing.T) {
	ts, _ := newGSPTestServer(t, WithMaxRadius(2000))
	badItems := []struct {
		name string
		item string
	}{
		{"nan x", `{"x":"NaN","y":0,"r":500}`},
		{"inf y", `{"x":0,"y":"+Inf","r":500}`},
		{"zero r", `{"x":0,"y":0,"r":0}`},
		{"negative r", `{"x":0,"y":0,"r":-5}`},
		{"r above cap", `{"x":0,"y":0,"r":5000}`},
	}
	good := `{"x":6000,"y":6000,"r":900}`
	for _, tc := range badItems {
		t.Run(tc.name, func(t *testing.T) {
			body := fmt.Sprintf(`{"items":[%s,%s,%s]}`, good, tc.item, good)
			status, raw := getStatusAndBody(t, http.MethodPost, ts.URL+PathFreqBatch, body)
			if strings.Contains(tc.item, `"NaN"`) || strings.Contains(tc.item, `"+Inf"`) {
				// JSON has no NaN/Inf literals; a string where a number
				// belongs kills the whole envelope at decode time.
				if status != http.StatusBadRequest {
					t.Fatalf("status = %d, want 400 (body %q)", status, raw)
				}
				assertJSONError(t, tc.name, raw)
				return
			}
			if status != http.StatusOK {
				t.Fatalf("status = %d, want 200 (body %q)", status, raw)
			}
			var resp FreqBatchResponse
			if err := json.Unmarshal(raw, &resp); err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != 3 {
				t.Fatalf("%d results, want 3", len(resp.Results))
			}
			if resp.Results[1].Error == "" {
				t.Errorf("bad item has no error")
			}
			if resp.Results[1].Freq != nil {
				t.Errorf("bad item has a vector alongside its error")
			}
			for _, i := range []int{0, 2} {
				if resp.Results[i].Error != "" || len(resp.Results[i].Freq) == 0 {
					t.Errorf("good item %d: error=%q freq len=%d", i, resp.Results[i].Error, len(resp.Results[i].Freq))
				}
			}
		})
	}
}
