package wire

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/poi"
)

// TestLBSHistoryUserCapBoundsFlood floods an LBS with one-shot unique
// userIds — the cheapest memory-exhaustion attack against the history
// map — and asserts the lbs.history_users gauge never exceeds the cap,
// while a steadily active user survives the entire flood (second-chance
// eviction spares touched entries).
func TestLBSHistoryUserCapBoundsFlood(t *testing.T) {
	const cap = 8
	city, svc := wireFixture(t)
	ts, client := newLBSTestServer(t, WithHistoryUsers(cap))
	ctx := context.Background()

	f := svc.Freq(city.RandomLocations(1, 41)[0], 900)
	rel := func(user string) ReleaseRequest {
		return ReleaseRequest{UserID: user, Freq: f, R: 900}
	}

	if _, err := client.Release(ctx, rel("resident")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := client.Release(ctx, rel(fmt.Sprintf("flood-%d", i))); err != nil {
			t.Fatalf("flood release %d: %v", i, err)
		}
		// The resident keeps releasing — more often than one queue
		// rotation (cap-1 evictions) — so its second-chance bit is
		// always set when it reaches the front and eviction passes it
		// over.
		if i%3 == 0 {
			if _, err := client.Release(ctx, rel("resident")); err != nil {
				t.Fatal(err)
			}
		}
		if snap := fetchSnapshot(t, ts.URL); snap.Counters[MetricLBSHistoryUsers] > cap {
			t.Fatalf("after flood %d: %s = %d, cap is %d",
				i, MetricLBSHistoryUsers, snap.Counters[MetricLBSHistoryUsers], cap)
		}
	}

	hist, err := client.Releases(ctx, "resident")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Releases) == 0 {
		t.Error("active user evicted by one-shot flood; second-chance must spare it")
	}
	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricLBSHistoryUsers]; got == 0 || got > cap {
		t.Errorf("%s = %d, want in [1, %d]", MetricLBSHistoryUsers, got, cap)
	}
}

// slowAuditor injects fixed per-release service time, giving the
// overload e2e a realistic bottleneck to saturate.
type slowAuditor struct{ d time.Duration }

func (a slowAuditor) Audit(poi.FreqVector, float64) (bool, int) {
	time.Sleep(a.d)
	return false, 0
}

// TestOverloadE2E is the satellite-4 end-to-end: a budget-enforced,
// admission-limited LBS is saturated through the fault proxy at
// concurrency far above its limit. It asserts the three overload
// invariants together:
//
//  1. every shed is a 503 carrying a valid Retry-After (>= 1s);
//  2. no request — admitted, queued, or shed — exceeds its deadline
//     plus a scheduling grace: shedding keeps latency bounded;
//  3. the budget ledger records exactly the accepted releases — sheds
//     and transport faults leave no budget trace.
func TestOverloadE2E(t *testing.T) {
	const (
		limit       = 2
		queueLen    = 2
		queueWait   = 100 * time.Millisecond
		serviceTime = 20 * time.Millisecond
		workers     = 12 // >= 4x the admission limit
		perWorker   = 4
		deadline    = 2 * time.Second
		grace       = 2 * time.Second // CI scheduling slack
	)

	city, _ := wireFixture(t)
	clk := newBudgetClock()
	led, err := budget.Open(budget.Policy{LifetimeEps: 1e6}, t.TempDir(), budget.WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })

	srv := NewLBSServer(city.M(),
		WithAuditor(slowAuditor{d: serviceTime}),
		WithAdmission(limit, queueLen, queueWait),
		WithBudget(led, 0.01, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// The fault proxy injects a couple of transport-level faults into the
	// storm (requests that never reach the server), and the tracking
	// transport proves no response body leaks across the mixed outcomes.
	ft := &faultTransport{base: http.DefaultTransport, script: []faultAction{actDrop, actOK, actDrop}}
	tt := &trackingTransport{base: ft}
	hc := &http.Client{Transport: tt}
	t.Cleanup(func() {
		if n := tt.open.Load(); n != 0 {
			t.Errorf("%d of %d response bodies leaked", n, tt.opened.Load())
		}
		hc.CloseIdleConnections()
	})
	client := NewLBSClient(ts.URL, hc, WithPrincipal("storm"))

	rel := testRelease(t, "storm")
	var accepted, shed, faulted atomic.Int64
	var mu sync.Mutex
	var violations []string
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				start := time.Now()
				_, err := client.Release(ctx, rel)
				elapsed := time.Since(start)
				cancel()
				var ov *OverloadedError
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.As(err, &ov):
					shed.Add(1)
					if ov.RetryAfter < time.Second {
						mu.Lock()
						violations = append(violations,
							fmt.Sprintf("shed Retry-After = %v, want >= 1s", ov.RetryAfter))
						mu.Unlock()
					}
				default:
					faulted.Add(1)
				}
				if elapsed > deadline+grace {
					mu.Lock()
					violations = append(violations,
						fmt.Sprintf("request took %v, deadline %v + grace %v", elapsed, deadline, grace))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	for _, v := range violations {
		t.Error(v)
	}
	total := accepted.Load() + shed.Load() + faulted.Load()
	if total != workers*perWorker {
		t.Errorf("outcomes = %d, want %d", total, workers*perWorker)
	}
	if accepted.Load() == 0 {
		t.Error("no release was accepted under saturation; admission must not starve everyone")
	}
	if shed.Load() == 0 {
		t.Errorf("no request was shed at concurrency %d against limit %d", workers, limit)
	}
	if faulted.Load() != 2 {
		t.Errorf("transport faults observed = %d, want 2 (scripted actDrop)", faulted.Load())
	}

	// Invariant 3: the ledger charged exactly the accepted releases —
	// sheds were rejected before any budget effect.
	if got := led.Status("storm").Releases; int64(got) != accepted.Load() {
		t.Errorf("ledger releases = %d, client-observed accepts = %d; sheds must leave no budget trace",
			got, accepted.Load())
	}

	// The server's own accounting agrees: shed counter matches the 503s
	// the clients saw, and nothing is left queued or in flight.
	waitFor(t, "admission quiesce", func() bool {
		snap := fetchSnapshot(t, ts.URL)
		return snap.Counters[MetricAdmissionInflight] == 0 && snap.Counters[MetricAdmissionQueued] == 0
	})
	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAdmissionShed]; int64(got) != shed.Load() {
		t.Errorf("admission.shed = %d, clients observed %d sheds", got, shed.Load())
	}
}
