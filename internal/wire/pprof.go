package wire

import (
	"net/http"
	"net/http/pprof"
)

// PathPprof is the profiling endpoint prefix served when profiling is
// enabled (WithPprof / WithLBSPprof; the daemons' -pprof flag).
const PathPprof = "/debug/pprof/"

// registerPprof mounts the net/http/pprof handlers on the server mux.
// The handlers come from the package functions, not http.DefaultServeMux,
// so enabling profiling never leaks handlers registered globally by other
// packages. No method qualifier: pprof's profile endpoints accept GET
// with query parameters and the symbol endpoint also accepts POST.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc(PathPprof, pprof.Index)
	mux.HandleFunc(PathPprof+"cmdline", pprof.Cmdline)
	mux.HandleFunc(PathPprof+"profile", pprof.Profile)
	mux.HandleFunc(PathPprof+"symbol", pprof.Symbol)
	mux.HandleFunc(PathPprof+"trace", pprof.Trace)
}
