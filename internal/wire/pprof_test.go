package wire

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
)

// getStatus issues a GET and returns the response status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func TestGSPServerPprofOptIn(t *testing.T) {
	ts, _ := newGSPTestServer(t, WithPprof(true))
	if got := getStatus(t, ts.URL+PathPprof); got != http.StatusOK {
		t.Errorf("pprof index with WithPprof(true): status %d", got)
	}
	if got := getStatus(t, ts.URL+PathPprof+"cmdline"); got != http.StatusOK {
		t.Errorf("pprof cmdline with WithPprof(true): status %d", got)
	}
}

func TestGSPServerPprofDefaultOff(t *testing.T) {
	ts, _ := newGSPTestServer(t)
	if got := getStatus(t, ts.URL+PathPprof); got != http.StatusNotFound {
		t.Errorf("pprof index without opt-in: status %d, want 404", got)
	}
}

func TestLBSServerPprofOptIn(t *testing.T) {
	city, _ := wireFixture(t)
	ts := httptest.NewServer(NewLBSServer(city.M(),
		WithLBSLogger(log.New(io.Discard, "", 0)),
		WithLBSPprof(true)))
	t.Cleanup(ts.Close)
	if got := getStatus(t, ts.URL+PathPprof); got != http.StatusOK {
		t.Errorf("pprof index with WithLBSPprof(true): status %d", got)
	}

	off := httptest.NewServer(NewLBSServer(city.M()))
	t.Cleanup(off.Close)
	if got := getStatus(t, off.URL+PathPprof); got != http.StatusNotFound {
		t.Errorf("pprof index without opt-in: status %d, want 404", got)
	}
}
