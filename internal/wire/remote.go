package wire

import (
	"context"
	"fmt"
	"net/http"

	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// PathPOIs serves the full POI dump — the public geo-data the paper's
// adversary is assumed to hold (it "can be obtained from publicly
// available geo-information service providers").
const PathPOIs = "/v1/pois"

// POIsResponse carries the full POI dump.
type POIsResponse struct {
	POIs []poi.POI `json:"pois"`
}

// registerPOIDump adds the dump endpoint; called from NewGSPServer.
func (s *GSPServer) registerPOIDump() {
	s.mux.HandleFunc("GET "+PathPOIs, func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, POIsResponse{POIs: s.svc.City().POIs()})
	})
}

// POIs fetches the full POI dump.
func (c *GSPClient) POIs(ctx context.Context) ([]poi.POI, error) {
	var out POIsResponse
	if err := c.core.do(ctx, http.MethodGet, PathPOIs, nil, nil, &out); err != nil {
		return nil, err
	}
	return out.POIs, nil
}

// FetchCity materializes a remote GSP's city locally: stats plus the full
// POI dump, rebuilt into an indexed gsp.City. This is the adversary's
// prior-knowledge acquisition step — after it, every attack in the
// library runs against data obtained purely over the wire.
func FetchCity(ctx context.Context, c *GSPClient) (*gsp.City, error) {
	stats, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("wire: FetchCity: %w", err)
	}
	pois, err := c.POIs(ctx)
	if err != nil {
		return nil, fmt.Errorf("wire: FetchCity: %w", err)
	}
	types := poi.NewTypeTable()
	for _, name := range stats.Types {
		types.Intern(name)
	}
	if types.Len() != stats.NumTypes {
		return nil, fmt.Errorf("wire: FetchCity: inconsistent type table (%d names, %d types)",
			types.Len(), stats.NumTypes)
	}
	city, err := gsp.NewCity(stats.Name, stats.Bounds, types, pois)
	if err != nil {
		return nil, fmt.Errorf("wire: FetchCity: %w", err)
	}
	return city, nil
}
