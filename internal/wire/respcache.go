package wire

// Zero-copy response writing for the GSP read endpoints. A hot /v1/freq
// key used to pay the full encode pipeline on every hit — cache lookup,
// vector clone, reflection-driven JSON encoding, buffer allocation — even
// though the bytes on the wire were identical each time. The encoded
// cache memoizes those bytes: single-query hits replay one stored []byte
// straight into the ResponseWriter, and the batch endpoints assemble
// their response from pre-encoded per-item segments, so a batch of hot
// items costs a handful of memcpys instead of a reflect walk over every
// vector.
//
// Byte identity is the contract that makes this safe: writeJSON streams
// through json.NewEncoder(w).Encode(v), which produces exactly
// json.Marshal(v) plus a trailing '\n' (both HTML-escape by default), so
// encodeJSON caches precisely the bytes the live encoder would emit, and
// a batch body assembled as {"results":[seg,",",seg...]}\n from
// per-item json.Marshal segments is exactly the marshaling of the full
// response struct. TestEncodedResponsesByteIdentical holds the two paths
// against each other, and the PR 7 cluster differential e2e (which
// hashes whole response bodies across single-node and sharded-gateway
// deployments) keeps guarding it from the outside.
//
// Entries are keyed by (endpoint kind, x, y, r) — the same key space as
// the gsp freq cache plus a kind tag so a /v1/freq body and a batch item
// segment for the same probe never collide. Eviction is per-shard
// second-chance, mirroring the gsp cache's policy. Cached slices are
// append-only after publication: get returns the stored slice and every
// consumer only copies it outward.

import (
	"encoding/json"
	"math"
	"net/http"
	"runtime"
	"sync"

	"poiagg/internal/obs"
)

// Encoded-cache metric names registered by NewGSPServer.
const (
	MetricEncHits      = "enc.cache.hits"
	MetricEncMisses    = "enc.cache.misses"
	MetricEncEvictions = "enc.cache.evictions"
	MetricEncSize      = "enc.cache.size"
)

// DefaultEncodedCache is the encoded-response cache capacity (entries)
// unless WithEncodedCache overrides it.
const DefaultEncodedCache = 4096

// WithEncodedCache sets the encoded-response cache capacity in entries;
// n <= 0 disables the cache and every response goes through the live
// JSON encoder (the ablation baseline the differential test compares
// against). Default DefaultEncodedCache.
func WithEncodedCache(n int) GSPServerOption {
	return gspOption(func(s *GSPServer) { s.encCap = n })
}

// encKind tags which endpoint a cached encoding belongs to.
type encKind uint8

const (
	encFreq      encKind = iota + 1 // full /v1/freq body
	encFreqItem                     // one /v1/freq/batch result segment
	encQueryItem                    // one /v1/query/batch result segment
)

// encKey identifies one cached encoding.
type encKey struct {
	kind    encKind
	x, y, r float64
}

// hash mixes the key through the splitmix64 finalizer (same construction
// as the gsp freq cache) with the kind folded into the seed.
func (k encKey) hash() uint64 {
	h := encMix64(math.Float64bits(k.x) ^ (0x9e3779b97f4a7c15 + uint64(k.kind)))
	h = encMix64(h ^ math.Float64bits(k.y))
	return encMix64(h ^ math.Float64bits(k.r))
}

func encMix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// encEntry is one cached encoding on its shard's second-chance queue.
type encEntry struct {
	key     encKey
	body    []byte
	next    *encEntry
	touched bool
}

type encShard struct {
	mu      sync.Mutex
	entries map[encKey]*encEntry
	head    *encEntry // oldest
	tail    *encEntry // newest
	cap     int

	hits, misses, evictions uint64
}

// encCache is a sharded second-chance cache of encoded response bytes.
type encCache struct {
	shards []encShard
	mask   uint64
}

func newEncCache(capacity int) *encCache {
	n := 1
	for n < 2*runtime.GOMAXPROCS(0) && n < 128 {
		n <<= 1
	}
	for n > capacity && n > 1 {
		n >>= 1
	}
	c := &encCache{shards: make([]encShard, n), mask: uint64(n - 1)}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i].cap = sc
		c.shards[i].entries = make(map[encKey]*encEntry, min(sc, 1024))
	}
	return c
}

func (c *encCache) get(k encKey) ([]byte, bool) {
	s := &c.shards[k.hash()&c.mask]
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.hits++
	e.touched = true
	b := e.body
	s.mu.Unlock()
	return b, true
}

func (c *encCache) put(k encKey, body []byte) {
	s := &c.shards[k.hash()&c.mask]
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.body = body
		e.touched = true
		s.mu.Unlock()
		return
	}
	e := &encEntry{key: k, body: body}
	s.enqueue(e)
	s.entries[k] = e
	if len(s.entries) > s.cap {
		s.evictOne()
	}
	s.mu.Unlock()
}

// enqueue appends e to the FIFO tail. Caller holds the shard lock.
func (s *encShard) enqueue(e *encEntry) {
	e.next = nil
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
}

// evictOne drops the oldest untouched entry, giving touched entries a
// second chance at the tail. Caller holds the shard lock.
func (s *encShard) evictOne() {
	for {
		e := s.head
		s.head = e.next
		if s.head == nil {
			s.tail = nil
		}
		if !e.touched {
			delete(s.entries, e.key)
			s.evictions++
			return
		}
		e.touched = false
		s.enqueue(e)
	}
}

// EncCacheMetrics is a point-in-time view of the encoded-response cache.
type EncCacheMetrics struct {
	Hits, Misses, Evictions uint64
	Size                    int
}

func (c *encCache) metrics() EncCacheMetrics {
	var m EncCacheMetrics
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		m.Hits += s.hits
		m.Misses += s.misses
		m.Evictions += s.evictions
		m.Size += len(s.entries)
		s.mu.Unlock()
	}
	return m
}

func (c *encCache) export(reg *obs.Registry) {
	reg.CounterFunc(MetricEncHits, func() uint64 { return c.metrics().Hits })
	reg.CounterFunc(MetricEncMisses, func() uint64 { return c.metrics().Misses })
	reg.CounterFunc(MetricEncEvictions, func() uint64 { return c.metrics().Evictions })
	reg.CounterFunc(MetricEncSize, func() uint64 { return uint64(c.metrics().Size) })
}

// EncodedCacheMetrics returns the encoded-response cache counters; the
// zero value when the cache is disabled.
func (s *GSPServer) EncodedCacheMetrics() EncCacheMetrics {
	if s.enc == nil {
		return EncCacheMetrics{}
	}
	return s.enc.metrics()
}

// encodeJSON marshals v to exactly the bytes writeJSON's stream encoder
// would emit: json.Marshal plus the trailing newline Encoder.Encode
// appends. Both HTML-escape, so the outputs agree byte for byte.
func encodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeRaw sends pre-encoded JSON with the same headers writeJSON sets.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeSegments assembles {"results":[seg,seg,...]}\n from pre-encoded
// per-item segments — byte-identical to writeJSON of the full response
// struct, without marshaling any already-cached item again.
func writeSegments(w http.ResponseWriter, segs [][]byte) {
	n := len(`{"results":[]}`) + 1
	for _, seg := range segs {
		n += len(seg) + 1
	}
	buf := make([]byte, 0, n)
	buf = append(buf, `{"results":[`...)
	for i, seg := range segs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, seg...)
	}
	buf = append(buf, "]}\n"...)
	writeRaw(w, http.StatusOK, buf)
}
