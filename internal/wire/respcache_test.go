package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// encPair builds two handlers over the same service: enc is the
// encoded-cache fast path, live the ablation baseline whose every byte
// comes from the stream encoder.
func encPair(t testing.TB) (enc, live *GSPServer) {
	t.Helper()
	_, svc := wireFixture(t)
	quiet := WithLogger(log.New(io.Discard, "", 0))
	enc = NewGSPServer(svc, quiet)
	live = NewGSPServer(svc, quiet, WithEncodedCache(0))
	return enc, live
}

func doReq(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, target, rd))
	return rec
}

// TestEncodedResponsesByteIdentical is the zero-copy contract's proof:
// for every read endpoint, over misses, hits, duplicates, and per-item
// errors, the encoded-cache path must emit exactly the bytes the live
// JSON encoder emits — status, Content-Type, and body.
func TestEncodedResponsesByteIdentical(t *testing.T) {
	enc, live := encPair(t)

	batch := func(items ...BatchItem) string {
		b, err := json.Marshal(BatchRequest{Items: items})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	type req struct {
		name, method, target, body string
	}
	var reqs []req
	// Single freq: three distinct keys, each issued three times so the
	// second and third hits replay cached bytes.
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			reqs = append(reqs, req{
				fmt.Sprintf("freq-k%d-round%d", i, round), http.MethodGet,
				fmt.Sprintf("/v1/freq?x=%d&y=%d&r=%d", 2000+i*1500, 3000+i*900, 800+i*100), "",
			})
		}
	}
	// Rejections must be untouched by the fast path.
	reqs = append(reqs,
		req{"freq-bad-numeric", http.MethodGet, "/v1/freq?x=abc&y=1&r=100", ""},
		req{"freq-bad-nan", http.MethodGet, "/v1/freq?x=NaN&y=1&r=100", ""},
		req{"freq-bad-radius", http.MethodGet, "/v1/freq?x=1&y=1&r=-5", ""},
	)
	// Batches: duplicates of one key, a fresh key, and invalid items
	// interleaved; repeated so the second pass is all segment hits.
	mixed := batch(
		BatchItem{X: 2000, Y: 3000, R: 800}, // also hot from the single-freq round
		BatchItem{X: 5500, Y: 4200, R: 900},
		BatchItem{X: 2000, Y: 3000, R: 800}, // duplicate
		BatchItem{X: 1, Y: 1, R: -3},        // invalid radius
		BatchItem{X: 7000, Y: 7000, R: 600},
	)
	allInvalid := batch(BatchItem{R: -1}, BatchItem{X: 1, Y: 2, R: 0})
	for round := 0; round < 2; round++ {
		reqs = append(reqs,
			req{fmt.Sprintf("freq-batch-round%d", round), http.MethodPost, PathFreqBatch, mixed},
			req{fmt.Sprintf("query-batch-round%d", round), http.MethodPost, PathQueryBatch, mixed},
		)
	}
	reqs = append(reqs,
		req{"freq-batch-all-invalid", http.MethodPost, PathFreqBatch, allInvalid},
		req{"query-batch-all-invalid", http.MethodPost, PathQueryBatch, allInvalid},
		req{"batch-malformed", http.MethodPost, PathFreqBatch, "{nope"},
		req{"query-single", http.MethodGet, "/v1/query?x=2000&y=3000&r=800", ""},
	)

	for _, rq := range reqs {
		a := doReq(t, enc, rq.method, rq.target, rq.body)
		b := doReq(t, live, rq.method, rq.target, rq.body)
		if a.Code != b.Code {
			t.Errorf("%s: status %d (encoded) vs %d (live)", rq.name, a.Code, b.Code)
		}
		if act, lct := a.Header().Get("Content-Type"), b.Header().Get("Content-Type"); act != lct {
			t.Errorf("%s: content-type %q vs %q", rq.name, act, lct)
		}
		if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
			t.Errorf("%s: bodies diverge:\nencoded: %s\nlive:    %s", rq.name, a.Body.Bytes(), b.Body.Bytes())
		}
	}

	// The comparison is only meaningful if the fast path actually served
	// cached bytes: the repeats above must have produced hits.
	m := enc.EncodedCacheMetrics()
	if m.Hits == 0 || m.Size == 0 {
		t.Fatalf("encoded cache never hit (metrics %+v) — the differential ran against a dead path", m)
	}
	if live.EncodedCacheMetrics() != (EncCacheMetrics{}) {
		t.Error("disabled encoded cache recorded activity")
	}
}

// TestEncodedCacheSecondChance pins the eviction policy: an entry whose
// touched bit is set is spared at eviction time (the untouched newcomer
// goes instead), while an untouched entry is evicted first-in-first-out.
func TestEncodedCacheSecondChance(t *testing.T) {
	c := newEncCache(1) // single shard, capacity 1
	k1 := encKey{kind: encFreq, x: 1}
	k2 := encKey{kind: encFreq, x: 2}
	c.put(k1, []byte("a"))
	if b, ok := c.get(k1); !ok || string(b) != "a" { // sets k1's touched bit
		t.Fatalf("get after put: %q %v", b, ok)
	}
	c.put(k2, []byte("b"))
	if b, ok := c.get(k1); !ok || string(b) != "a" {
		t.Error("recently touched k1 was evicted instead of spared")
	}
	if _, ok := c.get(k2); ok {
		t.Error("untouched newcomer k2 survived over a touched k1")
	}
	// k1's bit was cleared by the spare pass above, then re-set by the
	// get; a fresh insert after clearing it evicts k1 normally.
	c.put(k1, []byte("a")) // refresh clears nothing, but the next cycle:
	c.put(k2, []byte("b"))
	c.put(k2, []byte("b"))
	if m := c.metrics(); m.Evictions == 0 || m.Size != 1 {
		t.Errorf("metrics %+v after eviction", m)
	}
}

// TestEncodedFreqHitSkipsService proves the single-freq hit path never
// reaches the service layer: after the first request, the gsp cache's
// lookup counters stay frozen while the encoded cache serves.
func TestEncodedFreqHitSkipsService(t *testing.T) {
	_, svc := wireFixture(t)
	s := NewGSPServer(svc, WithLogger(log.New(io.Discard, "", 0)))
	const target = "/v1/freq?x=4321&y=1234&r=777"
	doReq(t, s, http.MethodGet, target, "")
	hits0, misses0 := svc.CacheStats()
	for i := 0; i < 5; i++ {
		if rec := doReq(t, s, http.MethodGet, target, ""); rec.Code != http.StatusOK {
			t.Fatalf("hit %d: status %d", i, rec.Code)
		}
	}
	hits1, misses1 := svc.CacheStats()
	if hits1 != hits0 || misses1 != misses0 {
		t.Errorf("encoded hits still touched the service: gsp cache %d/%d -> %d/%d",
			hits0, misses0, hits1, misses1)
	}
	if m := s.EncodedCacheMetrics(); m.Hits != 5 {
		t.Errorf("encoded cache hits = %d, want 5", m.Hits)
	}
}

// BenchmarkFreqEncodedHit prices a hot /v1/freq hit with the encoded
// cache replaying stored bytes against the live path that re-encodes the
// vector every time.
func BenchmarkFreqEncodedHit(b *testing.B) {
	_, svc := wireFixture(b)
	quiet := []GSPServerOption{WithLogger(log.New(io.Discard, "", 0)), WithInstrumentation(false)}
	req := httptest.NewRequest(http.MethodGet, "/v1/freq?x=5000&y=5000&r=1000", nil)
	for _, v := range []struct {
		name string
		srv  *GSPServer
	}{
		{"encoded", NewGSPServer(svc, quiet...)},
		{"live", NewGSPServer(svc, append(quiet, WithEncodedCache(0))...)},
	} {
		// Warm both tiers so the loop measures pure hits.
		v.srv.ServeHTTP(httptest.NewRecorder(), req)
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				v.srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
		})
	}
}
