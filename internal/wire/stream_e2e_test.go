package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/cloak"
	"poiagg/internal/defense"
	"poiagg/internal/obs"
	"poiagg/internal/stream"
)

var streamBase = time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)

// streamStack is one full streaming LBS deployment for tests: store,
// releaser, optional persistent ledger, manual clock, HTTP server.
type streamStack struct {
	st    *stream.Store
	rel   *stream.Releaser
	led   *budget.Ledger
	clock *stream.ManualClock
	ts    *httptest.Server
}

// streamStackConfig controls newStreamStack.
type streamStackConfig struct {
	maxUsers   int
	maxPerUser int
	ledgerDir  string // "" disables the budget ledger
	seed       uint64
	srvOpts    []LBSServerOption
}

func newStreamStack(t testing.TB, cfg streamStackConfig) *streamStack {
	t.Helper()
	city, svc := wireFixture(t)
	clock := stream.NewManualClock(streamBase)
	if cfg.maxUsers == 0 {
		cfg.maxUsers = 128
	}
	st, err := stream.NewStore(stream.Config{
		Window:     4 * time.Minute,
		MaxUsers:   cfg.maxUsers,
		MaxPerUser: cfg.maxPerUser,
		Clock:      clock.Now,
		Bounds:     city.Bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	var led *budget.Ledger
	if cfg.ledgerDir != "" {
		led, err = budget.Open(budget.Policy{LifetimeEps: 10, LifetimeDelta: 0.5},
			cfg.ledgerDir, budget.WithClock(clock.Now))
		if err != nil {
			t.Fatal(err)
		}
	}
	pop := cloak.UniformPopulation(city.Bounds, 2_000, 77)
	mech, err := defense.NewDPRelease(svc, pop, defense.DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := stream.NewReleaser(st, svc, mech, led, stream.ReleaserConfig{
		Radius: 800,
		Seed:   cfg.seed,
		Eps:    0.5,
		Delta:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]LBSServerOption{WithStream(st, rel)}, cfg.srvOpts...)
	ts := httptest.NewServer(NewLBSServer(city.M(), opts...))
	t.Cleanup(ts.Close)
	return &streamStack{st: st, rel: rel, led: led, clock: clock, ts: ts}
}

// streamEvent builds an in-bounds event for the wire fixture city.
func streamEvent(t testing.TB, user string, seed int, ts time.Time) stream.Event {
	t.Helper()
	city, _ := wireFixture(t)
	l := city.RandomLocations(1, uint64(seed)+9000)[0]
	return stream.Event{UserID: user, X: l.X, Y: l.Y, TS: ts}
}

// TestStreamReplayIdentityE2E is the PR's acceptance proof: live
// streamed ingestion over authenticated HTTP, interleaved with window
// ticks, then an offline batch replay of the captured event log over
// the same tick schedule. The windowed releases must be bit-identical
// (same seeded noise) and the budget ledgers must end byte-identical,
// both in-memory and as persisted snapshots.
func TestStreamReplayIdentityE2E(t *testing.T) {
	kr := mustKeyring(t, "acme", "globex")
	liveDir := t.TempDir()
	live := newStreamStack(t, streamStackConfig{
		ledgerDir: liveDir,
		seed:      4242,
		srvOpts:   []LBSServerOption{WithAuth(kr)},
	})
	acme := NewLBSClient(live.ts.URL, live.ts.Client(), WithSigningKey("acme", testKey('A')))
	globex := NewLBSClient(live.ts.URL, live.ts.Client(), WithSigningKey("globex", testKey('B')))
	ctx := context.Background()

	var log []stream.LoggedEvent
	ticks := []time.Time{
		streamBase.Add(1 * time.Minute),
		streamBase.Add(2 * time.Minute),
		streamBase.Add(3 * time.Minute),
		streamBase.Add(5*time.Minute + 30*time.Second),
	}
	// ingest streams a batch through the signed HTTP client at the
	// given server-clock time, capturing the log the replay will use.
	ingest := func(cl *LBSClient, principal string, at time.Time, evs ...stream.Event) *IngestResponse {
		t.Helper()
		live.clock.Set(at)
		for _, ev := range evs {
			log = append(log, stream.LoggedEvent{At: at, Principal: principal, Event: ev})
		}
		resp, err := cl.Ingest(ctx, evs)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := ingest(acme, "acme", streamBase.Add(10*time.Second),
		streamEvent(t, "ada", 1, streamBase.Add(5*time.Second)),
		streamEvent(t, "cyd", 2, streamBase.Add(8*time.Second)))
	if r1.Accepted != 2 || r1.Rejected != 0 {
		t.Fatalf("first batch: %+v", r1)
	}
	// One stale event mixed into a valid batch: rejected live, and the
	// replay must reproduce that rejection from the same logged clock.
	r2 := ingest(globex, "globex", streamBase.Add(30*time.Second),
		streamEvent(t, "bob", 3, streamBase.Add(25*time.Second)),
		streamEvent(t, "bob", 4, streamBase.Add(-10*time.Minute)))
	if r2.Accepted != 1 || r2.Rejected != 1 {
		t.Fatalf("second batch: %+v", r2)
	}

	var liveRels []stream.WindowRelease
	tick := func(tk time.Time) {
		t.Helper()
		live.clock.Set(tk)
		wr, err := live.rel.Tick(tk)
		if err != nil {
			t.Fatal(err)
		}
		liveRels = append(liveRels, wr)
	}
	tick(ticks[0])
	ingest(acme, "acme", streamBase.Add(80*time.Second),
		streamEvent(t, "ada", 5, streamBase.Add(75*time.Second)))
	ingest(globex, "globex", streamBase.Add(100*time.Second),
		streamEvent(t, "bob", 6, streamBase.Add(95*time.Second)),
		streamEvent(t, "eve", 7, streamBase.Add(99*time.Second)))
	tick(ticks[1])
	tick(ticks[2]) // no new events; everything still inside the 4m window
	tick(ticks[3]) // the first wave has aged out by now

	// The release history must round-trip the HTTP surface too — as the
	// public projection, which is all the endpoint serves.
	hist, err := acme.StreamReleases(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantPub := make([]stream.PublicRelease, 0, len(live.rel.History(0)))
	for _, wr := range live.rel.History(0) {
		wantPub = append(wantPub, wr.Public())
	}
	if !reflect.DeepEqual(hist.Releases, wantPub) {
		t.Fatalf("HTTP release history diverged from in-process history:\n got  %+v\n want %+v", hist.Releases, wantPub)
	}

	liveState, err := live.led.DumpState()
	if err != nil {
		t.Fatal(err)
	}

	// Offline replay: fresh stack, fresh ledger in a fresh dir, same
	// seed, same policy, same event log and tick schedule.
	replayDir := t.TempDir()
	replay := newStreamStack(t, streamStackConfig{ledgerDir: replayDir, seed: 4242})
	replayRels, err := stream.Replay(replay.st, replay.rel, replay.clock, log, ticks)
	if err != nil {
		t.Fatal(err)
	}

	liveJSON, err := json.Marshal(liveRels)
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := json.Marshal(replayRels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Fatalf("replayed releases not bit-identical:\n live   %s\n replay %s", liveJSON, replayJSON)
	}
	// Window shapes: first wave (ada, cyd, bob) at tick 0; eve joins by
	// tick 1; nothing ages out by tick 2 (4m window); by tick 3 only
	// bob's and eve's second-wave events survive.
	gotUsers := []int{liveRels[0].Users, liveRels[1].Users, liveRels[2].Users, liveRels[3].Users}
	if !reflect.DeepEqual(gotUsers, []int{3, 4, 4, 2}) {
		t.Errorf("unexpected window shapes %v: %s", gotUsers, liveJSON)
	}

	replayState, err := replay.led.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveState, replayState) {
		t.Fatalf("ledger state diverged:\n live   %s\n replay %s", liveState, replayState)
	}

	// Close both ledgers and compare the persisted snapshots byte for
	// byte.
	if err := live.led.Close(); err != nil {
		t.Fatal(err)
	}
	if err := replay.led.Close(); err != nil {
		t.Fatal(err)
	}
	liveSnap, err := os.ReadFile(filepath.Join(liveDir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	replaySnap, err := os.ReadFile(filepath.Join(replayDir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveSnap, replaySnap) {
		t.Fatalf("persisted ledger snapshots differ:\n live   %s\n replay %s", liveSnap, replaySnap)
	}
}

// TestStreamReleasesScrubTenantData pins the public-projection fix
// from review: GET /v1/stream/releases is readable by any caller, so
// the raw JSON it serves must carry neither denied tenant names (the
// tenant-isolation invariant the budget admin endpoints 403) nor the
// exact users/events counts (exact functions of real participation,
// outside the DP guarantee). Denials surface only as an anonymous
// count.
func TestStreamReleasesScrubTenantData(t *testing.T) {
	stk := newStreamStack(t, streamStackConfig{ledgerDir: t.TempDir(), seed: 11})
	const victim = "secret-tenant"
	if err := stk.st.Apply(streamEvent(t, "ada", 1, streamBase), victim); err != nil {
		t.Fatal(err)
	}
	// The stack's policy allows 10 eps lifetime at 0.5 per window: 20
	// ticks drain it, the 21st is denied. All ticks stay inside the 4m
	// window so the event keeps contributing.
	var last stream.WindowRelease
	for i := 1; i <= 21; i++ {
		var err error
		last, err = stk.rel.Tick(streamBase.Add(time.Duration(i) * time.Second))
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(last.Denied) != 1 || last.Denied[0] != victim {
		t.Fatalf("test premise broken: final tick Denied = %v", last.Denied)
	}

	resp, err := stk.ts.Client().Get(stk.ts.URL + PathStreamReleases)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, leak := range []string{victim, `"users"`, `"events"`, `"denied"`} {
		if strings.Contains(body, leak) {
			t.Errorf("public release body leaks %s:\n%s", leak, body)
		}
	}
	if !strings.Contains(body, `"deniedPrincipals":1`) {
		t.Errorf("public release body missing the anonymous denial count:\n%s", body)
	}
	var srr StreamReleasesResponse
	if err := json.Unmarshal(raw, &srr); err != nil {
		t.Fatal(err)
	}
	if n := len(srr.Releases); n != 21 {
		t.Fatalf("releases = %d, want 21", n)
	}
	if got := srr.Releases[20]; got.DeniedPrincipals != 1 || len(got.Freq) != 0 {
		t.Errorf("denied-window public release: %+v", got)
	}
	if got := srr.Releases[0]; got.DeniedPrincipals != 0 || len(got.Freq) == 0 {
		t.Errorf("healthy-window public release: %+v", got)
	}
}

// lossyTransport forwards each request to the real server but discards
// the first n responses, synthesizing a 503 instead — the "reply lost
// in transit" failure that makes an at-least-once client resend a batch
// the server already applied.
type lossyTransport struct {
	base http.RoundTripper
	lose int32
}

func (lt *lossyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := lt.base.RoundTrip(req)
	if err != nil || atomic.AddInt32(&lt.lose, -1) < 0 {
		return resp, err
	}
	resp.Body.Close()
	return &http.Response{
		Status:     "503 Service Unavailable",
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1, ProtoMinor: 1,
		Header:  make(http.Header),
		Body:    io.NopCloser(strings.NewReader(`{"error":"injected lost reply"}`)),
		Request: req,
	}, nil
}

// TestIngestRetryDeduplicates pins the review's duplicate-inflation
// fix end to end: the server applies a batch, the reply is lost, the
// retrying client resends the identical NDJSON body — and the window
// store deduplicates by the client-stamped event ids, so the retried
// batch reports Deduped (not Accepted) and the window holds each event
// exactly once.
func TestIngestRetryDeduplicates(t *testing.T) {
	stk := newStreamStack(t, streamStackConfig{seed: 5})
	hc := &http.Client{Transport: &lossyTransport{base: stk.ts.Client().Transport, lose: 1}}
	client := NewLBSClient(stk.ts.URL, hc,
		WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))

	evs := []stream.Event{
		streamEvent(t, "ada", 1, streamBase),
		streamEvent(t, "ada", 2, streamBase.Add(time.Second)),
		streamEvent(t, "bob", 3, streamBase.Add(2*time.Second)),
	}
	resp, err := client.Ingest(context.Background(), evs)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving (second) attempt saw every event already applied.
	if resp.Accepted != 0 || resp.Deduped != 3 || resp.Rejected != 0 {
		t.Fatalf("retried batch accounting: %+v", resp)
	}
	s := stk.st.Stats()
	if s.WindowEvents != 3 || s.Accepted != 3 || s.Deduped != 3 {
		t.Fatalf("window after retry: %+v (duplicates inflated the window)", s)
	}
	// A genuinely fresh batch (new call → new batch id) is not deduped.
	resp2, err := client.Ingest(context.Background(), []stream.Event{
		streamEvent(t, "ada", 4, streamBase.Add(3*time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Accepted != 1 || resp2.Deduped != 0 {
		t.Fatalf("fresh batch accounting: %+v", resp2)
	}
}

// TestIngestCrossTenantWindowIsolationE2E drives the review's hijack
// scenario over signed HTTP: tenant globex streams one event under a
// userId acme has been streaming. The event must land in globex's own
// window — acme's buffered events stay acme's (charged to acme, not
// globex, and not suppressible by globex's budget state).
func TestIngestCrossTenantWindowIsolationE2E(t *testing.T) {
	kr := mustKeyring(t, "acme", "globex")
	stk := newStreamStack(t, streamStackConfig{
		ledgerDir: t.TempDir(),
		seed:      13,
		srvOpts:   []LBSServerOption{WithAuth(kr)},
	})
	acme := NewLBSClient(stk.ts.URL, stk.ts.Client(), WithSigningKey("acme", testKey('A')))
	globex := NewLBSClient(stk.ts.URL, stk.ts.Client(), WithSigningKey("globex", testKey('B')))
	ctx := context.Background()

	if _, err := acme.Ingest(ctx, []stream.Event{
		streamEvent(t, "ada", 1, streamBase),
		streamEvent(t, "ada", 2, streamBase.Add(time.Second)),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := globex.Ingest(ctx, []stream.Event{
		streamEvent(t, "ada", 3, streamBase.Add(2*time.Second)),
	}); err != nil {
		t.Fatal(err)
	}

	aw := stk.st.ActiveAt(streamBase.Add(3 * time.Second))
	if len(aw) != 2 {
		t.Fatalf("windows = %+v, want separate acme/ada and globex/ada windows", aw)
	}
	if aw[0].Principal != "acme" || len(aw[0].Locations) != 2 ||
		aw[1].Principal != "globex" || len(aw[1].Locations) != 1 {
		t.Fatalf("window ownership: %+v", aw)
	}

	// The tick charges each tenant for its own window.
	wr, err := stk.rel.Tick(streamBase.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Users != 2 || wr.Events != 3 {
		t.Fatalf("release: %+v", wr)
	}
	for _, p := range []string{"acme", "globex"} {
		if d := stk.led.Status(p); d.Releases != 1 {
			t.Errorf("principal %s charged %d windows, want 1", p, d.Releases)
		}
	}
}

// fetchMetrics decodes the server's /v1/metrics snapshot.
func fetchMetrics(t testing.TB, ts *httptest.Server) obs.Snapshot {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestStreamFloodBoundedE2E is the acceptance flood: 10× the user cap
// of distinct streaming users, pushed through the real HTTP ingest
// endpoint, must leave stream.window_events at or under the cap-derived
// bound — the excess is shed (users_evicted counts it), not buffered.
func TestStreamFloodBoundedE2E(t *testing.T) {
	const maxUsers, maxPerUser = 32, 4
	stk := newStreamStack(t, streamStackConfig{maxUsers: maxUsers, maxPerUser: maxPerUser, seed: 7})
	client := NewLBSClient(stk.ts.URL, stk.ts.Client())
	ctx := context.Background()
	now := stk.clock.Now()

	sent := 0
	for batch := 0; batch < 10*maxUsers/16; batch++ {
		evs := make([]stream.Event, 0, 16*2)
		for u := 0; u < 16; u++ {
			user := fmt.Sprintf("flood-%04d", batch*16+u)
			for j := 0; j < 2; j++ {
				evs = append(evs, streamEvent(t, user, batch*1000+u*10+j, now))
				sent++
			}
		}
		resp, err := client.Ingest(ctx, evs)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Rejected != 0 {
			t.Fatalf("flood batch %d rejected events: %+v", batch, resp)
		}
	}

	snap := fetchMetrics(t, stk.ts)
	c := snap.Counters
	if got := c[stream.MetricActiveUsers]; got > maxUsers {
		t.Errorf("%s = %d > cap %d", stream.MetricActiveUsers, got, maxUsers)
	}
	if got := c[stream.MetricWindowEvents]; got > maxUsers*maxPerUser {
		t.Errorf("%s = %d > bound %d", stream.MetricWindowEvents, got, maxUsers*maxPerUser)
	}
	if got := c[stream.MetricEventsAccepted]; got != uint64(sent) {
		t.Errorf("%s = %d, want %d", stream.MetricEventsAccepted, got, sent)
	}
	if got := c[stream.MetricUsersEvicted]; got < uint64(8*maxUsers) {
		t.Errorf("%s = %d, want ≥ %d (flood must shed users)", stream.MetricUsersEvicted, got, 8*maxUsers)
	}
}

// TestIngestPerEventErrors exercises the structured per-event error
// surface with a hand-built NDJSON stream mixing valid, malformed,
// invalid, and blank lines.
func TestIngestPerEventErrors(t *testing.T) {
	city, _ := wireFixture(t)
	stk := newStreamStack(t, streamStackConfig{seed: 3})
	good := streamEvent(t, "ok-user", 1, streamBase)
	goodJSON, _ := json.Marshal(good)
	outOfBounds, _ := json.Marshal(stream.Event{UserID: "u2", X: city.Bounds.MaxX + 1e6, Y: 0, TS: streamBase})
	stale, _ := json.Marshal(streamEvent(t, "u3", 2, streamBase.Add(-time.Hour)))
	noUser, _ := json.Marshal(stream.Event{X: good.X, Y: good.Y, TS: streamBase})
	body := strings.Join([]string{
		string(goodJSON),
		"{not json",
		"", // blank: skipped, not an error
		string(outOfBounds),
		string(stale),
		string(noUser),
		string(goodJSON),
	}, "\n")

	resp, err := stk.ts.Client().Post(stk.ts.URL+PathIngest, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 2 || ir.Rejected != 4 {
		t.Fatalf("accounting: %+v", ir)
	}
	wantLines := map[int]string{
		2: "invalid JSON",
		4: "bad location",
		5: "older than window",
		6: "no userId",
	}
	if len(ir.Errors) != len(wantLines) {
		t.Fatalf("errors: %+v", ir.Errors)
	}
	for _, ee := range ir.Errors {
		frag, ok := wantLines[ee.Line]
		if !ok {
			t.Errorf("unexpected error line %d: %q", ee.Line, ee.Error)
			continue
		}
		if !strings.Contains(ee.Error, frag) {
			t.Errorf("line %d error %q does not mention %q", ee.Line, ee.Error, frag)
		}
	}
	if ir.ErrorsTruncated {
		t.Error("ErrorsTruncated set with 4 errors")
	}
}

// TestIngestErrorListTruncates proves a hostile stream of thousands of
// bad events cannot balloon the response: the error list caps at 64
// entries and the flag says so.
func TestIngestErrorListTruncates(t *testing.T) {
	stk := newStreamStack(t, streamStackConfig{seed: 3})
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("{broken\n")
	}
	resp, err := stk.ts.Client().Post(stk.ts.URL+PathIngest, "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Rejected != 100 || len(ir.Errors) != 64 || !ir.ErrorsTruncated {
		t.Fatalf("truncation: rejected=%d errors=%d truncated=%v", ir.Rejected, len(ir.Errors), ir.ErrorsTruncated)
	}
}

// TestIngestLineTooLong proves one oversized event line fails the
// stream with a 400 naming the line, instead of buffering it.
func TestIngestLineTooLong(t *testing.T) {
	stk := newStreamStack(t, streamStackConfig{seed: 3})
	long := `{"userId":"` + strings.Repeat("x", MaxIngestLine) + `"}`
	resp, err := stk.ts.Client().Post(stk.ts.URL+PathIngest, "application/x-ndjson", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "exceeds") {
		t.Errorf("error %q does not explain the line cap", er.Error)
	}
}

// TestIngestBodyTooLargeRealServer drives the 413 path through a real
// server body cap (not the fault proxy) and proves the typed error
// round-trips.
func TestIngestBodyTooLargeRealServer(t *testing.T) {
	stk := newStreamStack(t, streamStackConfig{seed: 3,
		srvOpts: []LBSServerOption{WithMaxBody(1024)}})
	client := NewLBSClient(stk.ts.URL, stk.ts.Client())
	evs := make([]stream.Event, 50)
	for i := range evs {
		evs[i] = streamEvent(t, fmt.Sprintf("big-%02d", i), i, streamBase)
	}
	_, err := client.Ingest(context.Background(), evs)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("want ErrBodyTooLarge, got %v", err)
	}
	var btl *BodyTooLargeError
	if !errors.As(err, &btl) {
		t.Fatalf("error is not a *BodyTooLargeError: %v", err)
	}
	if !strings.Contains(btl.Message, "1024") {
		t.Errorf("message %q does not name the cap", btl.Message)
	}
}

// TestIngestBackpressure503 proves ingest rides the admission gate: a
// slow chunked stream holding the only admission slot forces the next
// ingest to shed with 503 + Retry-After, mapped to the transient
// OverloadedError. Nothing is buffered on behalf of the shed client.
func TestIngestBackpressure503(t *testing.T) {
	stk := newStreamStack(t, streamStackConfig{seed: 3,
		srvOpts: []LBSServerOption{WithAdmission(1, 0, 0)}})
	ctx := context.Background()

	// A chunked ingest that stays open: the handler blocks in the
	// scanner waiting for more lines, occupying the admission slot.
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, stk.ts.URL+PathIngest, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type result struct {
		resp *http.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := stk.ts.Client().Do(req)
		done <- result{resp, err}
	}()
	first, _ := json.Marshal(streamEvent(t, "slowpoke", 1, streamBase))
	if _, err := pw.Write(append(first, '\n')); err != nil {
		t.Fatal(err)
	}
	// Wait (bounded) until the slow stream holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := fetchMetrics(t, stk.ts); snap.Counters[MetricAdmissionInflight] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow ingest never occupied the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	client := NewLBSClient(stk.ts.URL, stk.ts.Client())
	_, err = client.Ingest(ctx, []stream.Event{streamEvent(t, "shed-me", 2, streamBase)})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded while the slot is held, got %v", err)
	}
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("error is not a *OverloadedError: %v", err)
	}
	if ov.RetryAfter <= 0 {
		t.Errorf("shed carried no Retry-After hint: %+v", ov)
	}

	// Release the slot; the slow stream completes normally.
	pw.Close()
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.resp.Body.Close()
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("slow stream status = %d", res.resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(res.resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 1 {
		t.Fatalf("slow stream accounting: %+v", ir)
	}
	// The shed client's event never entered the window.
	if s := stk.st.Stats(); s.ActiveUsers != 1 {
		t.Errorf("window holds %d users, want only the slow stream's", s.ActiveUsers)
	}
}
