package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"poiagg/internal/stream"
)

// MaxIngestLine caps one NDJSON event line in bytes; a single event is
// a few hundred bytes, so anything near this is malformed or hostile.
const MaxIngestLine = 16 * 1024

// maxIngestErrors bounds how many per-event errors one IngestResponse
// reports; past it the response only counts rejects.
const maxIngestErrors = 64

// IngestEventError describes one rejected event in an NDJSON ingest
// stream, addressed by its 1-based line number.
type IngestEventError struct {
	Line  int    `json:"line"`
	Error string `json:"error"`
}

// IngestResponse summarizes one POST /v1/ingest stream: how many events
// entered the window, how many were rejected, and the first
// maxIngestErrors structured per-event errors.
type IngestResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Deduped counts events whose id was already live in the window:
	// at-least-once retries replayed them, and the original application
	// stands. They are neither accepted nor rejected.
	Deduped int `json:"deduped,omitempty"`
	// Errors details rejected events; truncated past maxIngestErrors.
	Errors []IngestEventError `json:"errors,omitempty"`
	// ErrorsTruncated is true when more events were rejected than
	// Errors reports.
	ErrorsTruncated bool `json:"errorsTruncated,omitempty"`
}

// StreamReleasesResponse lists windowed DP releases, oldest first. It
// carries the public projection only: exact contributor counts and
// denied tenant names never cross this (any-caller) endpoint — see
// stream.WindowRelease.Public.
type StreamReleasesResponse struct {
	Releases []stream.PublicRelease `json:"releases"`
}

// WithStream serves the live-ingestion surface on the LBS server:
// POST /v1/ingest feeds NDJSON check-in events into st's sliding
// window, and GET /v1/stream/releases lists rel's windowed DP releases
// (when rel is non-nil). Both stores export their stream.* metrics on
// the server's registry. Ingest rides the standard middleware stack:
// admission control sheds it with 503 + Retry-After under overload, and
// with auth enabled events are only ever credited to the
// signature-verified principal. The server does not tick rel; the
// daemon (or test) drives it through its own clock.
func WithStream(st *stream.Store, rel *stream.Releaser) LBSServerOption {
	return lbsOption(func(s *LBSServer) {
		s.streamStore = st
		s.streamRel = rel
	})
}

// ingestPrincipal resolves the budget principal for a whole ingest
// stream, with the same trust rules as releases: the verified identity
// is the only one consulted under auth; otherwise the X-Principal
// header then ?principal= apply, and an empty result falls back to each
// event's userId.
func (s *LBSServer) ingestPrincipal(r *http.Request) string {
	if s.auth != nil {
		p, _ := VerifiedPrincipal(r.Context())
		return p
	}
	if p := r.Header.Get(HeaderPrincipal); p != "" {
		return p
	}
	return r.URL.Query().Get("principal")
}

func (s *LBSServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	principal := s.ingestPrincipal(r)
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 4096), MaxIngestLine)

	var resp IngestResponse
	reject := func(line int, err error) {
		resp.Rejected++
		if len(resp.Errors) < maxIngestErrors {
			resp.Errors = append(resp.Errors, IngestEventError{Line: line, Error: err.Error()})
		} else {
			resp.ErrorsTruncated = true
		}
	}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			reject(line, fmt.Errorf("invalid JSON event: %v", err))
			continue
		}
		p := principal
		if p == "" {
			p = ev.UserID
		}
		if err := s.streamStore.Apply(ev, p); err != nil {
			if errors.Is(err, stream.ErrDuplicateEvent) {
				resp.Deduped++
				continue
			}
			reject(line, err)
			continue
		}
		resp.Accepted++
	}
	if err := sc.Err(); err != nil {
		// Events admitted before the cut stay admitted (the stream is
		// at-least-once anyway); the error status tells the client the
		// tail never arrived.
		switch {
		case isMaxBytes(err):
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("ingest stream exceeds %d bytes (accepted %d events before the cap)",
					s.maxBody, resp.Accepted))
		case errors.Is(err, bufio.ErrTooLong):
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("event line %d exceeds %d bytes", line+1, MaxIngestLine))
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("read ingest stream: %v", err))
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *LBSServer) handleStreamReleases(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid n parameter")
			return
		}
		n = v
	}
	hist := s.streamRel.History(n)
	pub := make([]stream.PublicRelease, len(hist))
	for i, wr := range hist {
		pub[i] = wr.Public()
	}
	writeJSON(w, http.StatusOK, StreamReleasesResponse{Releases: pub})
}
