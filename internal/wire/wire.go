// Package wire implements the paper's Fig. 1 LBS architecture over HTTP:
// a geo-information service provider (GSP) exposing the Query/Freq
// interface, a typed Go client for mobile users, and an LBS application
// server that accepts POI-aggregate releases. All payloads are JSON over
// net/http, stdlib only.
//
// The trust boundaries follow the paper: users send coordinates only to
// the GSP; the LBS application receives frequency vectors plus the
// metadata the threat model grants the adversary (user identity, query
// range, timestamp) — and can therefore mount the re-identification
// attacks, which the AuditingLBS demonstrates.
package wire

import (
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// API paths served by GSPServer.
const (
	PathStats = "/v1/stats"
	PathQuery = "/v1/query"
	PathFreq  = "/v1/freq"
)

// API paths served by LBSServer.
const (
	PathRelease  = "/v1/release"
	PathReleases = "/v1/releases"
)

// StatsResponse describes the GSP's city.
type StatsResponse struct {
	Name     string   `json:"name"`
	Bounds   geo.Rect `json:"bounds"`
	NumPOIs  int      `json:"numPois"`
	NumTypes int      `json:"numTypes"`
	Types    []string `json:"types"`
}

// QueryResponse carries the POIs within the requested range.
type QueryResponse struct {
	POIs []poi.POI `json:"pois"`
}

// FreqResponse carries a POI type frequency vector.
type FreqResponse struct {
	Freq poi.FreqVector `json:"freq"`
}

// ReleaseRequest is what a user (or its defense middleware) sends to the
// LBS application: the aggregate plus the metadata of the threat model.
type ReleaseRequest struct {
	UserID string         `json:"userId"`
	Freq   poi.FreqVector `json:"freq"`
	R      float64        `json:"r"`
	Time   time.Time      `json:"time"`
}

// ReleaseResponse acknowledges a release and optionally reports the
// audit outcome when the LBS server runs in auditing mode.
type ReleaseResponse struct {
	Accepted bool `json:"accepted"`
	// Audited is true when an auditor examined the release.
	Audited bool `json:"audited"`
	// ReIdentified is true when the auditor uniquely re-identified the
	// release's location.
	ReIdentified bool `json:"reIdentified,omitempty"`
	// CandidateCount is the auditor's surviving candidate count.
	CandidateCount int `json:"candidateCount,omitempty"`
}

// ReleasesResponse lists a user's stored releases.
type ReleasesResponse struct {
	UserID   string           `json:"userId"`
	Releases []ReleaseRequest `json:"releases"`
}

// ErrorResponse is the error envelope for non-2xx replies.
type ErrorResponse struct {
	Error string `json:"error"`
}
