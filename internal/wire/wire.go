// Package wire implements the paper's Fig. 1 LBS architecture over HTTP:
// a geo-information service provider (GSP) exposing the Query/Freq
// interface, a typed Go client for mobile users, and an LBS application
// server that accepts POI-aggregate releases. All payloads are JSON over
// net/http, stdlib only.
//
// The trust boundaries follow the paper: users send coordinates only to
// the GSP; the LBS application receives frequency vectors plus the
// metadata the threat model grants the adversary (user identity, query
// range, timestamp) — and can therefore mount the re-identification
// attacks, which the AuditingLBS demonstrates.
package wire

import (
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// API paths served by GSPServer.
const (
	PathStats = "/v1/stats"
	PathQuery = "/v1/query"
	PathFreq  = "/v1/freq"
)

// API paths served by LBSServer.
const (
	PathRelease  = "/v1/release"
	PathReleases = "/v1/releases"
	// PathBudget prefixes the budget admin endpoints on a budget-enforced
	// LBS server: GET /v1/budget/{principal} reports a principal's
	// accounting, POST /v1/budget/{principal}/reset zeroes it.
	PathBudget = "/v1/budget"
	// PathIngest accepts an NDJSON stream of check-in events on a
	// streaming-enabled LBS server (see WithStream).
	PathIngest = "/v1/ingest"
	// PathStreamReleases lists the windowed DP releases published by the
	// streaming releaser.
	PathStreamReleases = "/v1/stream/releases"
)

// PathClusterPeers is the cluster gateway's membership admin surface:
// GET lists the fleet, POST {"url": ...} joins a shard (readiness
// probe + cache pre-warm first), DELETE /v1/cluster/peers/{url} (URL
// path-escaped) retires one. Under auth the mutations are restricted
// to the WithClusterAdmin principal.
const PathClusterPeers = "/v1/cluster/peers"

// ClusterJoinRequest asks the gateway to admit a shard.
type ClusterJoinRequest struct {
	URL string `json:"url"`
}

// ClusterPeerInfo is one shard's membership row.
type ClusterPeerInfo struct {
	URL string `json:"url"`
	// Index is the shard's metrics index ("cluster.shard.<index>.*");
	// indices grow monotonically and are never reused.
	Index   int  `json:"index"`
	Healthy bool `json:"healthy"`
}

// ClusterPeersResponse is the membership listing returned by every
// /v1/cluster/peers verb.
type ClusterPeersResponse struct {
	Peers []ClusterPeerInfo `json:"peers"`
}

// HeaderPrincipal names the request header carrying the privacy-budget
// principal on POST /v1/release. A ?principal= query parameter is the
// fallback; with neither, the release's userId is charged.
const HeaderPrincipal = "X-Principal"

// StatsResponse describes the GSP's city.
type StatsResponse struct {
	Name     string   `json:"name"`
	Bounds   geo.Rect `json:"bounds"`
	NumPOIs  int      `json:"numPois"`
	NumTypes int      `json:"numTypes"`
	Types    []string `json:"types"`
}

// QueryResponse carries the POIs within the requested range.
type QueryResponse struct {
	POIs []poi.POI `json:"pois"`
}

// FreqResponse carries a POI type frequency vector.
type FreqResponse struct {
	Freq poi.FreqVector `json:"freq"`
}

// ReleaseRequest is what a user (or its defense middleware) sends to the
// LBS application: the aggregate plus the metadata of the threat model.
type ReleaseRequest struct {
	UserID string         `json:"userId"`
	Freq   poi.FreqVector `json:"freq"`
	R      float64        `json:"r"`
	Time   time.Time      `json:"time"`
}

// ReleaseResponse acknowledges a release and optionally reports the
// audit outcome when the LBS server runs in auditing mode.
type ReleaseResponse struct {
	Accepted bool `json:"accepted"`
	// Audited is true when an auditor examined the release.
	Audited bool `json:"audited"`
	// ReIdentified is true when the auditor uniquely re-identified the
	// release's location.
	ReIdentified bool `json:"reIdentified,omitempty"`
	// CandidateCount is the auditor's surviving candidate count.
	CandidateCount int `json:"candidateCount,omitempty"`
	// Budget reports the principal's accounting after this release when
	// the server enforces a privacy budget.
	Budget *BudgetState `json:"budget,omitempty"`
}

// BudgetState is a principal's privacy-budget accounting as reported by
// a budget-enforced LBS server: inside granted ReleaseResponses, 429
// denial bodies, and the /v1/budget admin endpoints.
type BudgetState struct {
	Principal  string  `json:"principal"`
	SpentEps   float64 `json:"spentEps"`
	SpentDelta float64 `json:"spentDelta"`
	// RemainingEps/RemainingDelta are the lifetime budget left.
	RemainingEps   float64 `json:"remainingEps"`
	RemainingDelta float64 `json:"remainingDelta"`
	// WindowRemainingEps/Delta are the sliding-window budget left (equal
	// to the lifetime remainders when the policy has no window).
	WindowRemainingEps   float64 `json:"windowRemainingEps"`
	WindowRemainingDelta float64 `json:"windowRemainingDelta"`
	Releases             uint64  `json:"releases"`
	// Denial ("lifetime" or "window") is set on 429 denial bodies.
	Denial string `json:"denial,omitempty"`
	// RetryAfterSeconds is how long until a window-denied release would
	// be admitted again; 0 for lifetime denials (waiting never helps).
	RetryAfterSeconds float64 `json:"retryAfterSeconds,omitempty"`
}

// BudgetErrorResponse is the structured body of a 429 budget denial.
type BudgetErrorResponse struct {
	Error  string       `json:"error"`
	Budget *BudgetState `json:"budget,omitempty"`
}

// ReleasesResponse lists a user's stored releases.
type ReleasesResponse struct {
	UserID   string           `json:"userId"`
	Releases []ReleaseRequest `json:"releases"`
}

// ErrorResponse is the error envelope for non-2xx replies.
type ErrorResponse struct {
	Error string `json:"error"`
}
