package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"poiagg/internal/attack"
	"poiagg/internal/citygen"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
)

var (
	wireOnce sync.Once
	wireCity *citygen.City
	wireSvc  *gsp.Service
)

func wireFixture(t testing.TB) (*citygen.City, *gsp.Service) {
	t.Helper()
	wireOnce.Do(func() {
		p := citygen.Beijing(31)
		p.NumPOIs = 2000
		p.NumTypes = 60
		p.Width, p.Height = 12_000, 12_000
		city, err := citygen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		wireCity = city
		wireSvc = gsp.NewService(city.City, 1<<14)
	})
	return wireCity, wireSvc
}

func newGSPTestServer(t testing.TB, opts ...GSPServerOption) (*httptest.Server, *GSPClient) {
	t.Helper()
	_, svc := wireFixture(t)
	opts = append(opts, WithLogger(log.New(io.Discard, "", 0)))
	ts := httptest.NewServer(NewGSPServer(svc, opts...))
	t.Cleanup(ts.Close)
	return ts, NewGSPClient(ts.URL, ts.Client())
}

func TestGSPStatsOverWire(t *testing.T) {
	city, _ := wireFixture(t)
	_, client := newGSPTestServer(t)
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Name != city.Name || stats.NumPOIs != city.NumPOIs() || stats.NumTypes != city.M() {
		t.Errorf("stats = %+v", stats)
	}
	if len(stats.Types) != city.M() {
		t.Errorf("types = %d", len(stats.Types))
	}
}

func TestGSPFreqMatchesLocal(t *testing.T) {
	city, svc := wireFixture(t)
	_, client := newGSPTestServer(t)
	ctx := context.Background()
	for _, l := range city.RandomLocations(20, 32) {
		remote, err := client.Freq(ctx, l, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !remote.Equal(svc.Freq(l, 1000)) {
			t.Fatalf("remote Freq diverges at %v", l)
		}
	}
}

func TestGSPQueryMatchesLocal(t *testing.T) {
	city, svc := wireFixture(t)
	_, client := newGSPTestServer(t)
	l := city.RandomLocations(1, 33)[0]
	remote, err := client.Query(context.Background(), l, 800)
	if err != nil {
		t.Fatal(err)
	}
	local := svc.Query(l, 800)
	if len(remote) != len(local) {
		t.Fatalf("remote %d POIs vs local %d", len(remote), len(local))
	}
}

func TestGSPValidation(t *testing.T) {
	ts, client := newGSPTestServer(t, WithMaxRadius(2000))
	ctx := context.Background()
	if _, err := client.Freq(ctx, geo.Point{}, 5000); !errors.Is(err, ErrBadRequest) {
		t.Errorf("oversized radius: %v", err)
	}
	if _, err := client.Freq(ctx, geo.Point{}, -5); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative radius: %v", err)
	}
	// Raw malformed query.
	resp, err := http.Get(ts.URL + PathFreq + "?x=abc&y=0&r=100")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed x gave %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Post(ts.URL+PathFreq, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to freq gave %d", resp.StatusCode)
	}
}

func TestGSPClientContextCancel(t *testing.T) {
	_, client := newGSPTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Stats(ctx); err == nil {
		t.Error("cancelled context succeeded")
	}
}

func TestGSPConcurrentClients(t *testing.T) {
	city, _ := wireFixture(t)
	_, client := newGSPTestServer(t)
	locs := city.RandomLocations(40, 34)
	var wg sync.WaitGroup
	errs := make(chan error, len(locs))
	for _, l := range locs {
		wg.Add(1)
		go func(l geo.Point) {
			defer wg.Done()
			if _, err := client.Freq(context.Background(), l, 700); err != nil {
				errs <- err
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func newLBSTestServer(t testing.TB, opts ...LBSServerOption) (*httptest.Server, *LBSClient) {
	t.Helper()
	city, _ := wireFixture(t)
	ts := httptest.NewServer(NewLBSServer(city.M(), opts...))
	t.Cleanup(ts.Close)
	return ts, NewLBSClient(ts.URL, ts.Client())
}

func TestLBSReleaseAndHistory(t *testing.T) {
	city, svc := wireFixture(t)
	_, client := newLBSTestServer(t)
	ctx := context.Background()
	l := city.RandomLocations(1, 35)[0]
	rel := ReleaseRequest{
		UserID: "alice",
		Freq:   svc.Freq(l, 900),
		R:      900,
		Time:   time.Date(2021, 3, 1, 9, 0, 0, 0, time.UTC),
	}
	resp, err := client.Release(ctx, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted || resp.Audited {
		t.Errorf("resp = %+v", resp)
	}
	hist, err := client.Releases(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Releases) != 1 || !hist.Releases[0].Freq.Equal(rel.Freq) {
		t.Errorf("history = %+v", hist)
	}
	empty, err := client.Releases(ctx, "nobody")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Releases) != 0 {
		t.Errorf("unknown user has history: %+v", empty)
	}
}

func TestLBSValidation(t *testing.T) {
	city, svc := wireFixture(t)
	ts, client := newLBSTestServer(t)
	ctx := context.Background()
	l := city.RandomLocations(1, 36)[0]
	good := svc.Freq(l, 900)

	cases := []ReleaseRequest{
		{UserID: "", Freq: good, R: 900},                                    // missing user
		{UserID: "bob", Freq: good[:3], R: 900},                             // wrong dim
		{UserID: "bob", Freq: good, R: 0},                                   // bad radius
		{UserID: "bob", Freq: append(good.Clone(), -1)[:len(good)], R: 900}, // negative entry
	}
	cases[3].Freq[0] = -1
	for i, rel := range cases {
		if _, err := client.Release(ctx, rel); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	// Garbage body.
	resp, err := http.Post(ts.URL+PathRelease, "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body gave %d", resp.StatusCode)
	}
	// Missing user on history endpoint.
	resp, err = http.Get(ts.URL + PathReleases)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user gave %d", resp.StatusCode)
	}
}

func TestLBSHistoryLimit(t *testing.T) {
	city, svc := wireFixture(t)
	_, client := newLBSTestServer(t, WithHistoryLimit(3))
	ctx := context.Background()
	l := city.RandomLocations(1, 37)[0]
	f := svc.Freq(l, 900)
	for i := 0; i < 5; i++ {
		if _, err := client.Release(ctx, ReleaseRequest{UserID: "carol", Freq: f, R: 900}); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := client.Releases(ctx, "carol")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Releases) != 3 {
		t.Errorf("history kept %d releases, want 3", len(hist.Releases))
	}
}

func TestEndToEndUserFlowWithAudit(t *testing.T) {
	// The full Fig. 1 loop over real HTTP: the user asks the GSP for its
	// aggregate, releases it to the LBS app, and the app (the adversary
	// of the threat model) audits it with the region attack.
	city, svc := wireFixture(t)
	_, gspClient := newGSPTestServer(t)
	_, lbsClient := newLBSTestServer(t, WithAuditor(RegionAuditor{Svc: svc}))
	ctx := context.Background()

	reIdentified := 0
	locs := city.RandomLocations(30, 38)
	for i, l := range locs {
		f, err := gspClient.Freq(ctx, l, 1000)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := lbsClient.Release(ctx, ReleaseRequest{
			UserID: "user-" + string(rune('a'+i%26)),
			Freq:   f,
			R:      1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Audited {
			t.Fatal("auditor did not run")
		}
		if resp.ReIdentified {
			reIdentified++
			if resp.CandidateCount != 1 {
				t.Errorf("re-identified with %d candidates", resp.CandidateCount)
			}
		}
	}
	if reIdentified == 0 {
		t.Error("audit never re-identified a raw release; uniqueness missing")
	}
}

func TestRegionAuditorMatchesAttack(t *testing.T) {
	city, svc := wireFixture(t)
	auditor := RegionAuditor{Svc: svc}
	for _, l := range city.RandomLocations(20, 39) {
		f := svc.Freq(l, 800)
		gotRe, gotN := auditor.Audit(f, 800)
		res := attack.Region(svc, f, 800)
		if gotRe != res.Success || gotN != len(res.Candidates) {
			t.Fatalf("auditor (%v, %d) vs attack (%v, %d)",
				gotRe, gotN, res.Success, len(res.Candidates))
		}
	}
}

func TestFetchCityAndAttackOverWire(t *testing.T) {
	// The adversary acquires its prior knowledge purely over HTTP and
	// mounts the attack against releases it observes; results must match
	// the local attack exactly.
	city, svc := wireFixture(t)
	_, client := newGSPTestServer(t)
	ctx := context.Background()

	remoteCity, err := FetchCity(ctx, client)
	if err != nil {
		t.Fatal(err)
	}
	if remoteCity.NumPOIs() != city.NumPOIs() || remoteCity.M() != city.M() {
		t.Fatalf("fetched city: %d POIs / %d types", remoteCity.NumPOIs(), remoteCity.M())
	}
	remoteSvc := gsp.NewService(remoteCity, 1<<14)
	for _, l := range city.RandomLocations(25, 40) {
		f := svc.Freq(l, 900)
		local := attack.Region(svc, f, 900)
		remote := attack.Region(remoteSvc, f, 900)
		if local.Success != remote.Success || len(local.Candidates) != len(remote.Candidates) {
			t.Fatalf("attack diverges over the wire at %v: local (%v,%d) remote (%v,%d)",
				l, local.Success, len(local.Candidates), remote.Success, len(remote.Candidates))
		}
		if local.Success && local.Anchor.ID != remote.Anchor.ID {
			t.Fatalf("different anchors: %v vs %v", local.Anchor, remote.Anchor)
		}
	}
}

func TestPOIsDump(t *testing.T) {
	city, _ := wireFixture(t)
	_, client := newGSPTestServer(t)
	pois, err := client.POIs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pois) != city.NumPOIs() {
		t.Errorf("dump has %d POIs, want %d", len(pois), city.NumPOIs())
	}
}

func TestGSPServerLogsRequests(t *testing.T) {
	_, svc := wireFixture(t)
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	ts := httptest.NewServer(NewGSPServer(svc, WithLogger(logger)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + PathStats)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + PathFreq + "?x=abc&y=0&r=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := buf.String()
	if !strings.Contains(out, "GET "+PathStats+" 200") {
		t.Errorf("missing 200 log line:\n%s", out)
	}
	if !strings.Contains(out, "GET "+PathFreq+" 400") {
		t.Errorf("missing 400 log line:\n%s", out)
	}
}
