// Package poiagg is a research library reproducing "Practical Location
// Privacy Attacks and Defense on Point-of-interest Aggregates" (Tong,
// Xia, Hua, Li, Zhong — ICDCS 2021).
//
// It models the paper's LBS architecture end to end: a geo-information
// service provider (GSP) answering POI range queries over a city, users
// that release only POI *type frequency vectors* to applications, the
// location re-identification attacks that exploit location uniqueness in
// those aggregates, and the defenses — including the paper's
// (ε,δ)-differentially private optimization-based release.
//
// # Quick start
//
//	city, _ := poiagg.GenerateBeijing(42)
//	user := city.RandomLocations(1, 7)[0]
//	release := city.Freq(user, 1000) // what the user sends to the app
//
//	res := city.RegionAttack(release, 1000)
//	if res.Success {
//	    // the adversary knows the user is within 1 km of res.Anchor
//	}
//
//	fg := city.FineGrainedAttack(release, 1000, poiagg.DefaultFineGrainedConfig())
//	_ = fg.Area // m², typically ≤ πr²/4
//
//	// Defend with the paper's DP mechanism:
//	mech, _ := city.NewDPRelease(poiagg.DefaultDPReleaseConfig())
//	protected, _ := mech.Release(poiagg.NewRand(1), user, 1000)
//	_ = city.RegionAttack(protected, 1000).Success // almost always false
//
// The experiment drivers that regenerate every figure of the paper live
// in the poirepro command; see EXPERIMENTS.md for measured-vs-paper
// numbers.
package poiagg

import (
	"fmt"
	"time"

	"poiagg/internal/attack"
	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
	"poiagg/internal/trajgen"
)

// Core geometry and data types, aliased from the implementation packages
// so downstream code only imports poiagg.
type (
	// Point is a planar city-local coordinate in meters.
	Point = geo.Point
	// LatLon is a WGS84 coordinate.
	LatLon = geo.LatLon
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Circle is a disk boundary.
	Circle = geo.Circle
	// POI is a typed point of interest.
	POI = poi.POI
	// TypeID identifies a POI type within a city.
	TypeID = poi.TypeID
	// FreqVector is a POI type frequency vector — the object users
	// release.
	FreqVector = poi.FreqVector
	// TypeTable registers POI type names.
	TypeTable = poi.TypeTable
	// Rand is a deterministic random stream.
	Rand = rng.Source
	// Trajectory is a user's timestamped movement trace.
	Trajectory = trajgen.Trajectory
	// TimedPoint is one timestamped observation.
	TimedPoint = trajgen.TimedPoint
	// Segment is a pair of successive observations.
	Segment = trajgen.Segment
)

// NewRand returns a deterministic random stream seeded with seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewTypeTable returns an empty POI type registry for building custom
// cities.
func NewTypeTable() *TypeTable { return poi.NewTypeTable() }

// City bundles a city's geo-information with its query service. It is
// both the honest GSP of the LBS architecture and the adversary's prior
// knowledge (the paper assumes the two coincide).
type City struct {
	gen *citygen.City
	svc *gsp.Service
}

// GenerateBeijing generates the synthetic Beijing calibrated to the
// paper's dataset (10,249 POIs, 177 types). See DESIGN.md for the
// OSM-substitution rationale.
func GenerateBeijing(seed uint64) (*City, error) {
	return generate(citygen.Beijing(seed))
}

// GenerateNewYork generates the synthetic New York City calibrated to
// the paper's dataset (30,056 POIs, 272 types).
func GenerateNewYork(seed uint64) (*City, error) {
	return generate(citygen.NewYork(seed))
}

// CityParams re-exports the synthetic city generator parameters for
// custom cities.
type CityParams = citygen.Params

// GenerateCity generates a synthetic city from explicit parameters.
func GenerateCity(p CityParams) (*City, error) { return generate(p) }

func generate(p citygen.Params) (*City, error) {
	gen, err := citygen.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return &City{gen: gen, svc: gsp.NewService(gen.City, 1<<18)}, nil
}

// NewCityFromPOIs builds a city from an explicit POI set — the entry
// point for plugging in real map extracts.
func NewCityFromPOIs(name string, bounds Rect, types *TypeTable, pois []POI) (*City, error) {
	c, err := gsp.NewCity(name, bounds, types, pois)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return &City{
		gen: &citygen.City{City: c},
		svc: gsp.NewService(c, 1<<18),
	}, nil
}

// Name returns the city name.
func (c *City) Name() string { return c.gen.Name }

// Bounds returns the city extent.
func (c *City) Bounds() Rect { return c.gen.Bounds }

// M returns the number of POI types.
func (c *City) M() int { return c.gen.M() }

// NumPOIs returns the number of POIs.
func (c *City) NumPOIs() int { return c.gen.NumPOIs() }

// Types returns the type registry.
func (c *City) Types() *TypeTable { return c.gen.Types }

// POIs returns a copy of the POI set.
func (c *City) POIs() []POI { return c.gen.POIs() }

// CityFreq returns the city-wide type frequency vector (copy).
func (c *City) CityFreq() FreqVector { return c.gen.CityFreq().Clone() }

// Query returns the POIs within radius r of l — the paper's Query(l, r).
func (c *City) Query(l Point, r float64) []POI { return c.svc.Query(l, r) }

// Freq returns the POI type frequency vector within radius r of l — the
// paper's Freq(l, r), the aggregate a user releases.
func (c *City) Freq(l Point, r float64) FreqVector { return c.svc.Freq(l, r) }

// RandomLocations samples n uniform user locations.
func (c *City) RandomLocations(n int, seed uint64) []Point {
	return c.gen.RandomLocations(n, seed)
}

// TaxiParams re-exports the synthetic taxi-trace generator parameters.
type TaxiParams = trajgen.TaxiParams

// DefaultTaxiParams returns a T-drive-like configuration.
func DefaultTaxiParams(seed uint64) TaxiParams { return trajgen.DefaultTaxiParams(seed) }

// GenerateTaxis generates synthetic taxi trajectories over the city.
func (c *City) GenerateTaxis(p TaxiParams) ([]Trajectory, error) {
	return trajgen.Taxis(c.gen.City, p)
}

// CheckinParams re-exports the synthetic check-in generator parameters.
type CheckinParams = trajgen.CheckinParams

// DefaultCheckinParams returns a Foursquare-like configuration.
func DefaultCheckinParams(seed uint64) CheckinParams { return trajgen.DefaultCheckinParams(seed) }

// GenerateCheckins generates synthetic check-in traces over the city.
func (c *City) GenerateCheckins(p CheckinParams) ([]Trajectory, error) {
	return trajgen.Checkins(c.gen.City, p)
}

// SampleTrajectoryLocations draws n locations from trajectory points.
func SampleTrajectoryLocations(trajs []Trajectory, n int, seed uint64) []Point {
	return trajgen.SampleLocations(trajs, n, seed)
}

// ExtractSegments returns successive observation pairs with gap in
// (0, maxGap] and movement of at least minMove meters.
func ExtractSegments(trajs []Trajectory, maxGap time.Duration, minMove float64) []Segment {
	return trajgen.Segments(trajs, maxGap, minMove)
}

// UniformPopulation places n cloaking users uniformly over the city, as
// the paper's k-cloaking experiments assume.
func (c *City) UniformPopulation(n int, seed uint64) *Population {
	return cloak.UniformPopulation(c.gen.Bounds, n, seed)
}

// Population is a user population for spatial cloaking.
type Population = cloak.Population

// Attack result/config re-exports.
type (
	// RegionResult reports a region re-identification attempt.
	RegionResult = attack.RegionResult
	// FineGrainedResult reports a fine-grained attack.
	FineGrainedResult = attack.FineGrainedResult
	// FineGrainedConfig configures the fine-grained attack.
	FineGrainedConfig = attack.FineGrainedConfig
	// TrajectoryResult reports a two-release attack.
	TrajectoryResult = attack.TrajectoryResult
	// TrajectoryConfig configures the trajectory attack.
	TrajectoryConfig = attack.TrajectoryConfig
	// Release is one observed aggregate release with metadata.
	Release = attack.Release
	// Recoverer reconstructs sanitized frequencies.
	Recoverer = attack.Recoverer
	// RecoveryConfig configures recovery-model training.
	RecoveryConfig = attack.RecoveryConfig
	// DistanceEstimator predicts inter-release distance.
	DistanceEstimator = attack.DistanceEstimator
)

// DefaultFineGrainedConfig returns the paper's MAXaux = 20 setting.
func DefaultFineGrainedConfig() FineGrainedConfig { return attack.DefaultFineGrainedConfig() }

// DefaultTrajectoryConfig returns a balanced trajectory-attack setting.
func DefaultTrajectoryConfig() TrajectoryConfig { return attack.DefaultTrajectoryConfig() }

// DefaultRecoveryConfig returns a balanced recovery-training setting.
func DefaultRecoveryConfig(seed uint64) RecoveryConfig { return attack.DefaultRecoveryConfig(seed) }

// RegionAttack runs the Cao et al. region re-identification attack
// against a released vector.
func (c *City) RegionAttack(f FreqVector, r float64) RegionResult {
	return attack.Region(c.svc, f, r)
}

// FineGrainedAttack runs the paper's Algorithm 1 and returns the shrunken
// feasible region.
func (c *City) FineGrainedAttack(f FreqVector, r float64, cfg FineGrainedConfig) FineGrainedResult {
	return attack.FineGrained(c.svc, f, r, cfg)
}

// TrainRecoverer trains the learning-based attack that reconstructs the
// given sanitized types from released vectors at query range r.
func (c *City) TrainRecoverer(sanitized []TypeID, r float64, cfg RecoveryConfig) (*Recoverer, error) {
	return attack.TrainRecoverer(c.svc, sanitized, r, cfg)
}

// ReleaseTransform is a public frequency-level defense, as seen by an
// adversary that can simulate it.
type ReleaseTransform = attack.ReleaseTransform

// TrainTransformRecoverer trains the recovery attack against an
// arbitrary public frequency-level defense (see the ext-robust
// experiment): the adversary simulates the defense on random locations
// and learns to predict the targets' true counts from defended releases.
func (c *City) TrainTransformRecoverer(transform ReleaseTransform, targets []TypeID, r float64, cfg RecoveryConfig) (*Recoverer, error) {
	return attack.TrainTransformRecoverer(c.svc, transform, targets, r, cfg)
}

// TrainDistanceEstimator trains the trajectory attack's distance
// regressor from ground-truth segments.
func (c *City) TrainDistanceEstimator(segs []Segment, r float64, cfg TrajectoryConfig) (*DistanceEstimator, error) {
	return attack.TrainDistanceEstimator(c.svc, segs, r, cfg)
}

// TrajectoryAttack runs the trajectory-uniqueness attack on two
// successive releases of the same user.
func (c *City) TrajectoryAttack(est *DistanceEstimator, first, second Release, cfg TrajectoryConfig) TrajectoryResult {
	return attack.Trajectory(c.svc, est, first, second, cfg)
}

// SequenceResult reports the multi-release trajectory attack.
type SequenceResult = attack.SequenceResult

// TrajectorySequenceAttack generalizes the trajectory attack to an
// arbitrary run of successive releases (the paper's Eq. 6), propagating
// distance constraints along the chain until fixpoint. An extension
// beyond the paper's two-release evaluation.
func (c *City) TrajectorySequenceAttack(est *DistanceEstimator, releases []Release, cfg TrajectoryConfig) SequenceResult {
	return attack.TrajectorySequence(c.svc, est, releases, cfg)
}
