package poiagg

import (
	"sync"
	"testing"
	"time"
)

var (
	rootOnce sync.Once
	rootCity *City
)

func rootFixture(t testing.TB) *City {
	t.Helper()
	rootOnce.Do(func() {
		p := CityParams{
			Name:                 "mini",
			NumPOIs:              2500,
			NumTypes:             80,
			ZipfExponent:         1.3,
			Width:                15_000,
			Height:               15_000,
			NumDistricts:         30,
			DistrictSigmaMin:     250,
			DistrictSigmaMax:     1500,
			HomeDistrictsPerType: 4,
			HomeAffinity:         0.8,
			BackgroundFrac:       0.06,
			Seed:                 51,
		}
		city, err := GenerateCity(p)
		if err != nil {
			t.Fatal(err)
		}
		rootCity = city
	})
	return rootCity
}

func TestGeneratePresets(t *testing.T) {
	bj, err := GenerateBeijing(1)
	if err != nil {
		t.Fatal(err)
	}
	if bj.NumPOIs() != 10_249 || bj.M() != 177 || bj.Name() != "beijing" {
		t.Errorf("Beijing stats: %d POIs, %d types", bj.NumPOIs(), bj.M())
	}
	if bj.Bounds().Area() <= 0 {
		t.Error("empty bounds")
	}
	if len(bj.POIs()) != bj.NumPOIs() {
		t.Error("POIs() length mismatch")
	}
	if bj.CityFreq().Total() != bj.NumPOIs() {
		t.Error("CityFreq total mismatch")
	}
	if bj.Types().Len() != bj.M() {
		t.Error("Types().Len() mismatch")
	}
}

func TestEndToEndAttackAndDefense(t *testing.T) {
	city := rootFixture(t)
	const r = 1000.0
	locs := city.RandomLocations(60, 2)

	var plainSucc int
	for _, l := range locs {
		release := city.Freq(l, r)
		res := city.RegionAttack(release, r)
		if res.Success {
			plainSucc++
			fg := city.FineGrainedAttack(release, r, DefaultFineGrainedConfig())
			if !fg.Success {
				t.Fatal("fine-grained lost region success")
			}
			if fg.Area <= 0 {
				t.Fatal("empty feasible region")
			}
		}
	}
	if plainSucc == 0 {
		t.Fatal("attack never succeeded")
	}

	mech, err := city.NewDPRelease(DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := NewRand(3)
	var dpSucc int
	for _, l := range locs {
		protected, err := mech.Release(src, l, r)
		if err != nil {
			t.Fatal(err)
		}
		// A success must locate the actual user: unique candidate whose
		// radius-r disk contains l (a unique-but-wrong anchor is a failed
		// attack).
		res := city.RegionAttack(protected, r)
		if res.Success && res.Covers(l, r) {
			dpSucc++
		}
	}
	if dpSucc >= plainSucc {
		t.Errorf("DP defense did not reduce success: %d vs %d", dpSucc, plainSucc)
	}
}

func TestNewCityFromPOIs(t *testing.T) {
	types := NewTypeTable()
	a := types.Intern("cafe")
	b := types.Intern("museum")
	pois := []POI{
		{ID: 0, Type: a, Pos: Point{X: 100, Y: 100}},
		{ID: 1, Type: b, Pos: Point{X: 300, Y: 300}},
	}
	city, err := NewCityFromPOIs("custom", Rect{MaxX: 1000, MaxY: 1000}, types, pois)
	if err != nil {
		t.Fatal(err)
	}
	f := city.Freq(Point{X: 120, Y: 120}, 100)
	if f[a] != 1 || f[b] != 0 {
		t.Errorf("Freq = %v", f)
	}
	if got := city.Query(Point{X: 120, Y: 120}, 500); len(got) != 2 {
		t.Errorf("Query = %v", got)
	}
}

func TestNewCityFromPOIsValidation(t *testing.T) {
	if _, err := NewCityFromPOIs("bad", Rect{}, nil, nil); err == nil {
		t.Error("nil types accepted")
	}
}

func TestTrajectoryFacade(t *testing.T) {
	city := rootFixture(t)
	p := DefaultTaxiParams(4)
	p.NumTaxis = 15
	p.PointsPerTaxi = 30
	trajs, err := city.GenerateTaxis(p)
	if err != nil {
		t.Fatal(err)
	}
	segs := ExtractSegments(trajs, 10*time.Minute, 100)
	if len(segs) < 20 {
		t.Fatalf("only %d segments", len(segs))
	}
	const r = 1000.0
	est, err := city.TrainDistanceEstimator(segs, r, DefaultTrajectoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := segs[0]
	res := city.TrajectoryAttack(est,
		Release{F: city.Freq(s.From.Pos, r), T: s.From.T, R: r},
		Release{F: city.Freq(s.To.Pos, r), T: s.To.T, R: r},
		DefaultTrajectoryConfig())
	if res.PredictedDist < 0 {
		t.Error("negative distance")
	}
}

func TestCheckinFacade(t *testing.T) {
	city := rootFixture(t)
	p := DefaultCheckinParams(5)
	p.NumUsers = 10
	p.CheckinsPerUser = 20
	trajs, err := city.GenerateCheckins(p)
	if err != nil {
		t.Fatal(err)
	}
	locs := SampleTrajectoryLocations(trajs, 25, 1)
	if len(locs) != 25 {
		t.Fatalf("got %d locations", len(locs))
	}
}

func TestDefenseFacades(t *testing.T) {
	city := rootFixture(t)
	if _, err := city.NewSanitizer(10); err != nil {
		t.Error(err)
	}
	if _, err := city.NewGeoInd(0.1); err != nil {
		t.Error(err)
	}
	if _, err := city.NewGeoInd(-1); err == nil {
		t.Error("bad eps accepted")
	}
	pop := city.UniformPopulation(1000, 6)
	if _, err := city.NewCloaking(pop, 10); err != nil {
		t.Error(err)
	}
	if _, err := city.NewOptRelease(); err != nil {
		t.Error(err)
	}
	if _, err := city.NewDPReleaseWithPopulation(pop, DefaultDPReleaseConfig()); err != nil {
		t.Error(err)
	}
	bad := DefaultDPReleaseConfig()
	bad.K = 0
	if _, err := city.NewDPReleaseWithPopulation(pop, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRecovererFacade(t *testing.T) {
	city := rootFixture(t)
	san, err := city.NewSanitizer(10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRecoveryConfig(7)
	cfg.TrainSamples = 200
	cfg.ValSamples = 50
	rec, err := city.TrainRecoverer(san.Sanitized(), 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := city.RandomLocations(1, 8)[0]
	f := city.Freq(l, 1000)
	recovered := rec.Recover(san.Apply(f))
	if len(recovered) != city.M() {
		t.Errorf("recovered dim %d", len(recovered))
	}
}
