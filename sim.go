package poiagg

import (
	"poiagg/internal/mobsim"
)

// Simulation re-exports: a discrete-event replay of mobility traces
// through a release pipeline, with observers (adversaries, metrics)
// consuming releases in global time order.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = mobsim.Config
	// SimResult summarizes a run.
	SimResult = mobsim.Result
	// SimRelease is one observed release event.
	SimRelease = mobsim.Release
	// Pipeline turns a location into a released vector (a defense).
	Pipeline = mobsim.Pipeline
	// Observer consumes release events.
	Observer = mobsim.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = mobsim.ObserverFunc
	// SimAdversary attacks every observed release and scores itself.
	SimAdversary = mobsim.Adversary
	// QueryPolicy gates which observations become queries.
	QueryPolicy = mobsim.Policy
	// AlwaysQuery queries at every observation.
	AlwaysQuery = mobsim.AlwaysQuery
	// ProbabilisticQuery queries with a fixed probability.
	ProbabilisticQuery = mobsim.ProbabilisticQuery
	// MinGapQuery rate-limits queries per user.
	MinGapQuery = mobsim.MinGapQuery
)

// Simulation error policies.
const (
	// FailFast aborts the simulation on the first pipeline error.
	FailFast = mobsim.FailFast
	// SkipErrors drops failed releases and keeps going.
	SkipErrors = mobsim.SkipErrors
)

// RunSimulation replays the configured world.
func RunSimulation(cfg SimConfig) (SimResult, error) {
	return mobsim.Run(cfg)
}

// PlainPipeline releases exact aggregates (no protection).
func (c *City) PlainPipeline() Pipeline {
	return func(_ *Rand, l Point, r float64) (FreqVector, error) {
		return c.svc.Freq(l, r), nil
	}
}

// DPPipeline adapts a DP release mechanism to a simulation pipeline.
func DPPipeline(mech *DPRelease) Pipeline {
	return func(src *Rand, l Point, r float64) (FreqVector, error) {
		return mech.Release(src, l, r)
	}
}

// NewSimAdversary returns a simulation adversary attacking with this
// city as prior knowledge.
func (c *City) NewSimAdversary() *SimAdversary {
	return mobsim.NewAdversary(c.svc)
}
